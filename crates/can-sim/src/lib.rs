//! # can-sim — a bit-level, discrete-event CAN bus simulator
//!
//! This crate is the hardware substitute of the MichiCAN reproduction: it
//! stands in for the paper's breadboard CAN bus (Arduino Dues, SN65HVD230
//! transceivers, PCAN replay) with a bit-synchronous simulation of the
//! wired-AND medium and fully ISO 11898-1-compliant controller state
//! machines.
//!
//! * [`parser`] — streaming receive-path frame parser.
//! * [`controller`] — the per-node protocol FSM: arbitration, transmission,
//!   error signalling (active/passive flags, delimiters, suspend), fault
//!   confinement, bus-off and recovery.
//! * [`node`] — ECU = controller + [`Application`](can_core::app::Application)
//!   \+ optional [`BitAgent`](can_core::agent::BitAgent) (the pin-multiplexed
//!   defense hook).
//! * [`sim`] — the two-phase tick driver, event log and signal trace.
//! * [`event`] — protocol events for metric extraction.
//! * [`measure`] — bus-off episodes and duration statistics (Table II).
//!
//! ## Example: one frame between two ECUs
//!
//! ```
//! use can_core::app::{PeriodicSender, SilentApplication};
//! use can_core::{BusSpeed, CanFrame, CanId};
//! use can_sim::{EventKind, Node, Simulator};
//!
//! let mut sim = Simulator::new(BusSpeed::K500);
//! let frame = CanFrame::data_frame(CanId::new(0x123).unwrap(), &[1, 2, 3]).unwrap();
//! sim.add_node(Node::new("tx", Box::new(PeriodicSender::new(frame, 1_000, 0))));
//! sim.add_node(Node::new("rx", Box::new(SilentApplication)));
//! sim.run(500);
//! assert!(sim
//!     .events()
//!     .iter()
//!     .any(|e| matches!(e.kind, EventKind::FrameReceived { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod event;
pub mod fault;
pub mod measure;
pub mod node;
pub mod parser;
pub mod sim;

pub use controller::{Controller, ControllerConfig, StepOutput};
pub use event::{ErrorRole, Event, EventKind, NodeId};
pub use fault::{BurstParams, FaultModel, FaultStack, FaultyAgent, PinFaultConfig, TxFault};
pub use measure::{bus_off_episodes, BusOffEpisode, DurationStats};
pub use node::Node;
pub use parser::{RxEvent, RxParser};
pub use sim::{SignalTrace, Simulator};

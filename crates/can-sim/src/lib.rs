//! # can-sim — a bit-level, discrete-event CAN bus simulator
//!
//! This crate is the hardware substitute of the MichiCAN reproduction: it
//! stands in for the paper's breadboard CAN bus (Arduino Dues, SN65HVD230
//! transceivers, PCAN replay) with a bit-synchronous simulation of the
//! wired-AND medium and fully ISO 11898-1-compliant controller state
//! machines.
//!
//! * [`parser`] — streaming receive-path frame parser.
//! * [`controller`] — the per-node protocol FSM: arbitration, transmission,
//!   error signalling (active/passive flags, delimiters, suspend), fault
//!   confinement, bus-off and recovery.
//! * [`node`] — ECU = controller + [`Application`](can_core::app::Application)
//!   \+ optional [`BitAgent`](can_core::agent::BitAgent) (the pin-multiplexed
//!   defense hook).
//! * [`sim`] — the two-phase tick driver, event log and signal trace.
//! * [`event`] — protocol events for metric extraction.
//! * [`measure`] — bus-off episodes and duration statistics (Table II).
//! * [`tap`] — passive [`FrameTap`](tap::FrameTap) observers: N intrusion
//!   detectors watching one bus without N nodes.
//! * [`telemetry`] — always-on kernel self-telemetry: bits resolved per
//!   engine, packed-stretch statistics and fallback causes.
//!
//! ## Example: one frame between two ECUs
//!
//! ```
//! use can_core::app::{PeriodicSender, SilentApplication};
//! use can_core::{CanFrame, CanId};
//! use can_sim::prelude::*;
//!
//! let frame = CanFrame::data_frame(CanId::new(0x123).unwrap(), &[1, 2, 3]).unwrap();
//! let mut sim = SimBuilder::new(BusSpeed::K500)
//!     .node(Node::new("tx", Box::new(PeriodicSender::new(frame, 1_000, 0))))
//!     .node(Node::new("rx", Box::new(SilentApplication)))
//!     .build();
//! sim.run(500);
//! assert!(sim
//!     .events()
//!     .iter()
//!     .any(|e| matches!(e.kind, EventKind::FrameReceived { .. })));
//! ```
//!
//! Long mostly-idle runs go through [`Simulator::run_fast`], which is
//! event-, trace- and metrics-identical to [`Simulator::run`] but skips
//! quiescent stretches of bus time in closed form.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod controller;
pub mod event;
pub mod fault;
pub mod measure;
pub mod node;
pub mod parser;
pub mod sim;
pub mod tap;
pub mod telemetry;

pub use builder::SimBuilder;
pub use controller::{Controller, ControllerConfig, StepOutput};
pub use event::{ErrorRole, Event, EventKind, NodeId};
pub use fault::{BurstParams, FaultModel, FaultStack, FaultyAgent, PinFaultConfig, TxFault};
pub use measure::{bus_off_episodes, BusOffEpisode, DurationStats};
pub use node::Node;
pub use parser::{RxEvent, RxParser};
pub use sim::{SignalTrace, Simulator};
pub use tap::FrameTap;
pub use telemetry::{FallbackCause, KernelTelemetry};

/// Everything needed to build and run a simulation:
/// `use can_sim::prelude::*;`.
pub mod prelude {
    pub use crate::builder::SimBuilder;
    pub use crate::event::{ErrorRole, Event, EventKind, NodeId};
    pub use crate::fault::{FaultModel, FaultStack, TxFault};
    pub use crate::node::Node;
    pub use crate::sim::{SignalTrace, Simulator};
    pub use crate::tap::FrameTap;
    pub use can_core::{BitDuration, BitInstant, BusSpeed, Level};
}

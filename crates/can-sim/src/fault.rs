//! Channel fault injection.
//!
//! The paper argues MichiCAN cannot false-positive a legitimate node into
//! bus-off: "a node needs to encounter 32 consecutive errors for the TEC
//! to reach a level that would trigger a bus-off condition. In case of
//! sporadic errors, the likelihood of hitting this threshold is near
//! zero" (§IV-E). This module adds a configurable bit-error channel to
//! the simulated medium so that claim can be tested instead of assumed.
//!
//! Faults model *bus-level* disturbances (EMI glitches on the twisted
//! pair): after the wired-AND resolves, the level every node samples may
//! be flipped with a configured probability, or at scripted instants.

use can_core::Level;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bus-level fault model applied after the wired-AND.
#[derive(Debug)]
#[derive(Default)]
pub enum FaultModel {
    /// No disturbance (default).
    #[default]
    None,
    /// Each bit flips independently with probability `ber`.
    RandomBitErrors {
        /// Bit error rate, 0.0–1.0.
        ber: f64,
        /// Deterministic RNG for reproducible runs (boxed to keep the
        /// enum small).
        rng: Box<StdRng>,
    },
    /// Flip exactly the bits at the given instants (sorted, deduplicated).
    Scripted {
        /// Bit times at which the bus level is inverted.
        flips: Vec<u64>,
        /// Index of the next pending flip.
        cursor: usize,
    },
}

impl FaultModel {
    /// A random-error channel with the given bit error rate and seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= ber <= 1.0`.
    pub fn random(ber: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&ber), "BER must be a probability");
        FaultModel::RandomBitErrors {
            ber,
            rng: Box::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// A scripted channel flipping exactly the given bit times.
    pub fn scripted(mut flips: Vec<u64>) -> Self {
        flips.sort_unstable();
        flips.dedup();
        FaultModel::Scripted { flips, cursor: 0 }
    }

    /// Applies the model to the resolved bus level at bit time `now`.
    pub fn apply(&mut self, level: Level, now: u64) -> Level {
        match self {
            FaultModel::None => level,
            FaultModel::RandomBitErrors { ber, rng } => {
                if *ber > 0.0 && rng.random_bool(*ber) {
                    level.opposite()
                } else {
                    level
                }
            }
            FaultModel::Scripted { flips, cursor } => {
                if flips.get(*cursor) == Some(&now) {
                    *cursor += 1;
                    level.opposite()
                } else {
                    level
                }
            }
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_transparent() {
        let mut model = FaultModel::None;
        for t in 0..100 {
            assert_eq!(model.apply(Level::Recessive, t), Level::Recessive);
            assert_eq!(model.apply(Level::Dominant, t), Level::Dominant);
        }
    }

    #[test]
    fn scripted_flips_exact_bits() {
        let mut model = FaultModel::scripted(vec![5, 2, 5, 9]);
        let mut flipped = Vec::new();
        for t in 0..12 {
            if model.apply(Level::Recessive, t).is_dominant() {
                flipped.push(t);
            }
        }
        assert_eq!(flipped, vec![2, 5, 9]);
    }

    #[test]
    fn random_ber_matches_rate() {
        let mut model = FaultModel::random(0.01, 42);
        let flips = (0..100_000)
            .filter(|&t| model.apply(Level::Recessive, t).is_dominant())
            .count();
        assert!((800..=1_200).contains(&flips), "≈ 1 % of 100k: {flips}");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut m = FaultModel::random(0.05, seed);
            (0..1_000)
                .map(|t| m.apply(Level::Recessive, t))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    #[should_panic(expected = "BER must be a probability")]
    fn invalid_ber_panics() {
        let _ = FaultModel::random(1.5, 0);
    }

    #[test]
    fn zero_ber_never_flips() {
        let mut model = FaultModel::random(0.0, 1);
        for t in 0..10_000 {
            assert_eq!(model.apply(Level::Dominant, t), Level::Dominant);
        }
    }
}

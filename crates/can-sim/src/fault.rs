//! Fault injection: channel, transmitter and defender-pin faults.
//!
//! The paper argues MichiCAN cannot false-positive a legitimate node into
//! bus-off: "a node needs to encounter 32 consecutive errors for the TEC
//! to reach a level that would trigger a bus-off condition. In case of
//! sporadic errors, the likelihood of hitting this threshold is near
//! zero" (§IV-E). This module makes that claim — and the defender's
//! behaviour when its own assumptions break — testable instead of assumed,
//! at three seams:
//!
//! * **Channel faults** ([`FaultModel`], stacked via [`FaultStack`]) model
//!   bus-level disturbances (EMI glitches on the twisted pair): after the
//!   wired-AND resolves, the level every node samples may be flipped —
//!   independently per bit, in bursts (Gilbert–Elliott), or at scripted
//!   instants.
//! * **Transmitter faults** ([`TxFault`], attached per node) model a
//!   faulty ECU rather than a noisy wire: a transceiver stuck dominant, a
//!   babbling node driving garbage, or a transient crash and restart.
//! * **Defender pin faults** ([`PinFaultConfig`] + [`FaultyAgent`]) sit on
//!   the `CAN_RX` seam between the bus and a
//!   [`BitAgent`](can_core::agent::BitAgent): sampling jitter, missed
//!   bit-interrupts and delayed start-of-frame hard-syncs — the failure
//!   modes a software-defined defense must degrade gracefully under.

use can_core::agent::BitAgent;
use can_core::{BitInstant, Level};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Consecutive recessive bits after which the next dominant edge is a
/// start-of-frame (matches the controllers' integration rule).
const IDLE_BITS_BEFORE_SOF: u32 = 11;

fn assert_probability(p: f64, what: &str) {
    assert!((0.0..=1.0).contains(&p), "{what} must be a probability");
}

/// Parameters of the Gilbert–Elliott two-state burst-error channel.
///
/// The channel alternates between a *good* and a *bad* state with the
/// given per-bit transition probabilities; each state flips bits with its
/// own error rate. Mean burst length is `1 / p_bad_to_good` bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstParams {
    /// Per-bit probability of entering the bad (burst) state.
    pub p_good_to_bad: f64,
    /// Per-bit probability of leaving the bad state.
    pub p_bad_to_good: f64,
    /// Bit error rate while in the good state (usually ≈ 0).
    pub ber_good: f64,
    /// Bit error rate while in the bad state.
    pub ber_bad: f64,
}

impl BurstParams {
    /// Validates every field as a probability.
    ///
    /// # Panics
    ///
    /// Panics if any field lies outside `0.0..=1.0`.
    pub fn validate(&self) {
        assert_probability(self.p_good_to_bad, "p_good_to_bad");
        assert_probability(self.p_bad_to_good, "p_bad_to_good");
        assert_probability(self.ber_good, "ber_good");
        assert_probability(self.ber_bad, "ber_bad");
    }

    /// The long-run fraction of bits spent in the bad state.
    pub fn bad_state_fraction(&self) -> f64 {
        let total = self.p_good_to_bad + self.p_bad_to_good;
        if total == 0.0 {
            0.0
        } else {
            self.p_good_to_bad / total
        }
    }

    /// The long-run average bit error rate of the channel.
    pub fn mean_ber(&self) -> f64 {
        let bad = self.bad_state_fraction();
        self.ber_bad * bad + self.ber_good * (1.0 - bad)
    }
}

/// A bus-level fault model applied after the wired-AND.
#[derive(Debug, Default)]
pub enum FaultModel {
    /// No disturbance (default).
    #[default]
    None,
    /// Each bit flips independently with probability `ber`.
    RandomBitErrors {
        /// Bit error rate, 0.0–1.0.
        ber: f64,
        /// Deterministic RNG for reproducible runs (boxed to keep the
        /// enum small).
        rng: Box<StdRng>,
    },
    /// A Gilbert–Elliott burst-error channel: errors cluster while the
    /// channel is in its bad state.
    Bursty {
        /// Channel parameters.
        params: BurstParams,
        /// Whether the channel is currently in the bad state.
        in_bad_state: bool,
        /// Deterministic RNG.
        rng: Box<StdRng>,
    },
    /// Flip exactly the bits at the given instants (sorted, deduplicated).
    Scripted {
        /// Bit times at which the bus level is inverted.
        flips: Vec<u64>,
        /// Index of the next pending flip.
        cursor: usize,
    },
}

impl FaultModel {
    /// A random-error channel with the given bit error rate and seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= ber <= 1.0`.
    pub fn random(ber: f64, seed: u64) -> Self {
        assert_probability(ber, "BER");
        FaultModel::RandomBitErrors {
            ber,
            rng: Box::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// A Gilbert–Elliott burst channel starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not a probability.
    pub fn bursty(params: BurstParams, seed: u64) -> Self {
        params.validate();
        FaultModel::Bursty {
            params,
            in_bad_state: false,
            rng: Box::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// A scripted channel flipping exactly the given bit times.
    pub fn scripted(mut flips: Vec<u64>) -> Self {
        flips.sort_unstable();
        flips.dedup();
        FaultModel::Scripted { flips, cursor: 0 }
    }

    /// The earliest bit time at or after `now` at which this model may
    /// disturb the bus or needs its per-bit [`FaultModel::apply`] call
    /// (RNG advancement). `None` means the model is permanently inert
    /// from `now` on; `Some(t)` with `t > now` promises that skipping the
    /// `apply` calls in `[now, t)` is unobservable.
    pub fn next_activity(&self, now: u64) -> Option<u64> {
        match self {
            FaultModel::None => None,
            // A live RNG advances on every bit — never skippable.
            FaultModel::RandomBitErrors { ber, .. } => (*ber > 0.0).then_some(now),
            FaultModel::Bursty {
                params,
                in_bad_state,
                ..
            } => {
                let p_leave = if *in_bad_state {
                    params.p_bad_to_good
                } else {
                    params.p_good_to_bad
                };
                let ber = if *in_bad_state {
                    params.ber_bad
                } else {
                    params.ber_good
                };
                (p_leave > 0.0 || ber > 0.0).then_some(now)
            }
            // The cursor only advances on an exact hit, so a gap before
            // the next scripted flip leaves the model untouched. A cursor
            // stuck on a past instant never fires again (same as the
            // per-bit path).
            FaultModel::Scripted { flips, cursor } => match flips.get(*cursor) {
                Some(&t) if t >= now => Some(t),
                _ => None,
            },
        }
    }

    /// Applies the model to the resolved bus level at bit time `now`.
    pub fn apply(&mut self, level: Level, now: u64) -> Level {
        match self {
            FaultModel::None => level,
            FaultModel::RandomBitErrors { ber, rng } => {
                if *ber > 0.0 && rng.random_bool(*ber) {
                    level.opposite()
                } else {
                    level
                }
            }
            FaultModel::Bursty {
                params,
                in_bad_state,
                rng,
            } => {
                let p_leave = if *in_bad_state {
                    params.p_bad_to_good
                } else {
                    params.p_good_to_bad
                };
                if p_leave > 0.0 && rng.random_bool(p_leave) {
                    *in_bad_state = !*in_bad_state;
                }
                let ber = if *in_bad_state {
                    params.ber_bad
                } else {
                    params.ber_good
                };
                if ber > 0.0 && rng.random_bool(ber) {
                    level.opposite()
                } else {
                    level
                }
            }
            FaultModel::Scripted { flips, cursor } => {
                if flips.get(*cursor) == Some(&now) {
                    *cursor += 1;
                    level.opposite()
                } else {
                    level
                }
            }
        }
    }
}

/// An ordered stack of channel fault models, applied first-to-last.
///
/// Stacking composes independent disturbances — e.g. a low background BER
/// plus an EMI burst channel plus a scripted flip at one frame-boundary
/// bit — without baking every combination into one model.
#[derive(Debug, Default)]
pub struct FaultStack {
    layers: Vec<FaultModel>,
}

impl FaultStack {
    /// The empty (transparent) stack.
    pub fn new() -> Self {
        FaultStack::default()
    }

    /// Builder-style: appends a layer and returns the stack.
    pub fn layer(mut self, model: FaultModel) -> Self {
        self.push(model);
        self
    }

    /// Appends a layer applied after the existing ones.
    pub fn push(&mut self, model: FaultModel) {
        if !matches!(model, FaultModel::None) {
            self.layers.push(model);
        }
    }

    /// Number of (non-transparent) layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack disturbs nothing.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Applies every layer in order to the resolved bus level.
    pub fn apply(&mut self, level: Level, now: u64) -> Level {
        self.layers
            .iter_mut()
            .fold(level, |lvl, layer| layer.apply(lvl, now))
    }

    /// The earliest [`FaultModel::next_activity`] horizon over all layers.
    pub fn next_activity(&self, now: u64) -> Option<u64> {
        self.layers
            .iter()
            .filter_map(|layer| layer.next_activity(now))
            .min()
    }
}

impl From<FaultModel> for FaultStack {
    fn from(model: FaultModel) -> Self {
        FaultStack::new().layer(model)
    }
}

/// A transmitter-side fault attached to one node: the ECU itself (MCU or
/// transceiver) misbehaves, rather than the wire.
///
/// Windows are half-open `[from, until)` intervals in bit times; pass
/// `u64::MAX` for an unbounded fault.
#[derive(Debug)]
pub enum TxFault {
    /// The transceiver output is shorted dominant: the node jams the bus
    /// for the whole window regardless of its controller.
    StuckDominant {
        /// First faulty bit time.
        from: u64,
        /// First healthy bit time again.
        until: u64,
    },
    /// A babbling node: drives pseudo-random garbage (dominant with
    /// probability `duty` per bit) for the whole window.
    Babbling {
        /// First faulty bit time.
        from: u64,
        /// First healthy bit time again.
        until: u64,
        /// Per-bit probability of driving dominant.
        duty: f64,
        /// Deterministic RNG.
        rng: Box<StdRng>,
    },
    /// The MCU crashes at `down_at` (node falls silent, controller frozen)
    /// and restarts from reset at `up_at`.
    CrashRestart {
        /// Bit time of the crash.
        down_at: u64,
        /// Bit time of the restart (`u64::MAX`: never restarts).
        up_at: u64,
        /// Whether the reset was already delivered.
        restarted: bool,
    },
}

impl TxFault {
    /// A transceiver stuck dominant during `[from, until)`.
    pub fn stuck_dominant(from: u64, until: u64) -> Self {
        TxFault::StuckDominant { from, until }
    }

    /// A babbling node during `[from, until)` driving dominant with
    /// probability `duty` per bit.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= duty <= 1.0`.
    pub fn babbling(from: u64, until: u64, duty: f64, seed: u64) -> Self {
        assert_probability(duty, "duty");
        TxFault::Babbling {
            from,
            until,
            duty,
            rng: Box::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// A transient crash at `down_at` with a restart-from-reset at `up_at`.
    pub fn crash_restart(down_at: u64, up_at: u64) -> Self {
        assert!(down_at <= up_at, "restart precedes the crash");
        TxFault::CrashRestart {
            down_at,
            up_at,
            restarted: false,
        }
    }

    /// The level forced onto the node's TX contribution at `now`, if the
    /// fault is active. Call exactly once per bit time (advances the
    /// babble RNG).
    pub fn tx_override(&mut self, now: u64) -> Option<Level> {
        match self {
            TxFault::StuckDominant { from, until } => {
                (*from..*until).contains(&now).then_some(Level::Dominant)
            }
            TxFault::Babbling {
                from,
                until,
                duty,
                rng,
            } => (*from..*until).contains(&now).then(|| {
                if *duty > 0.0 && rng.random_bool(*duty) {
                    Level::Dominant
                } else {
                    Level::Recessive
                }
            }),
            TxFault::CrashRestart { down_at, up_at, .. } => (*down_at..*up_at)
                .contains(&now)
                .then_some(Level::Recessive),
        }
    }

    /// Whether the node's MCU is down at `now` (controller, application
    /// and agent must not run).
    pub fn is_down(&self, now: u64) -> bool {
        match self {
            TxFault::CrashRestart { down_at, up_at, .. } => (*down_at..*up_at).contains(&now),
            _ => false,
        }
    }

    /// The earliest bit time at or after `now` at which this fault may
    /// force a level, deliver a restart or otherwise needs per-bit
    /// processing. `None` means the fault is spent.
    pub fn next_activity(&self, now: u64) -> Option<u64> {
        match self {
            TxFault::StuckDominant { from, until } | TxFault::Babbling { from, until, .. } => {
                if now < *from {
                    Some(*from)
                } else if now < *until {
                    Some(now)
                } else {
                    None
                }
            }
            TxFault::CrashRestart {
                down_at,
                up_at,
                restarted,
            } => {
                if now < *down_at {
                    Some(*down_at)
                } else if now < *up_at {
                    // Down: nothing happens until the restart instant.
                    Some(*up_at)
                } else if !*restarted {
                    // The reset is pending delivery via `take_restart`.
                    Some(now)
                } else {
                    None
                }
            }
        }
    }

    /// Returns `true` exactly once, at the first bit time at or after the
    /// restart instant: the owner must reset its controller.
    pub fn take_restart(&mut self, now: u64) -> bool {
        match self {
            TxFault::CrashRestart {
                up_at, restarted, ..
            } if !*restarted && now >= *up_at => {
                *restarted = true;
                true
            }
            _ => false,
        }
    }
}

/// Fault rates for a defender's pin access (sampling and edge interrupts).
///
/// All fields default to zero (a healthy pin).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PinFaultConfig {
    /// Probability that a sample reads the wrong level (sampling jitter
    /// near an edge, ringing, or a marginal threshold).
    pub sample_flip_prob: f64,
    /// Probability that the per-bit interrupt never fires, so the agent
    /// misses the bit entirely.
    pub missed_bit_prob: f64,
    /// Probability that a start-of-frame edge is detected late (the
    /// hard-sync interrupt is masked), delaying the agent's view of the
    /// frame start.
    pub sof_delay_prob: f64,
    /// How many bits late a delayed start-of-frame is seen.
    pub sof_delay_bits: u8,
}

impl PinFaultConfig {
    /// Validates every probability.
    ///
    /// # Panics
    ///
    /// Panics if a rate lies outside `0.0..=1.0`.
    pub fn validate(&self) {
        assert_probability(self.sample_flip_prob, "sample_flip_prob");
        assert_probability(self.missed_bit_prob, "missed_bit_prob");
        assert_probability(self.sof_delay_prob, "sof_delay_prob");
    }

    /// Whether the pin is fault-free.
    pub fn is_healthy(&self) -> bool {
        self.sample_flip_prob == 0.0 && self.missed_bit_prob == 0.0 && self.sof_delay_prob == 0.0
    }
}

/// Wraps a [`BitAgent`] behind a faulty `CAN_RX` pin.
///
/// The wrapped agent receives a disturbed view of the bus: samples may be
/// flipped, dropped (the bit interrupt never fires) or — for the first
/// dominant bit after a bus-idle period — delivered late, exactly the
/// degradations a real pin-multiplexed defense faces. TX is untouched:
/// the fault sits on the receive path.
///
/// Generic over the inner agent so callers keep typed access to it
/// (defense statistics, health state); `A = Box<dyn BitAgent>` works too.
pub struct FaultyAgent<A> {
    inner: A,
    config: PinFaultConfig,
    rng: StdRng,
    /// Consecutive recessive bits observed on the true bus.
    idle_run: u32,
    /// Remaining bits during which a delayed SOF is masked.
    sof_mask: u8,
}

impl<A: BitAgent> FaultyAgent<A> {
    /// Wraps `inner` behind a pin with the given fault rates.
    ///
    /// # Panics
    ///
    /// Panics if a rate in `config` is not a probability.
    pub fn new(inner: A, config: PinFaultConfig, seed: u64) -> Self {
        config.validate();
        FaultyAgent {
            inner,
            config,
            rng: StdRng::seed_from_u64(seed),
            idle_run: IDLE_BITS_BEFORE_SOF,
            sof_mask: 0,
        }
    }

    /// The wrapped agent.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the wrapped agent.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Unwraps the inner agent.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A> std::fmt::Debug for FaultyAgent<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyAgent")
            .field("config", &self.config)
            .field("idle_run", &self.idle_run)
            .field("sof_mask", &self.sof_mask)
            .finish()
    }
}

impl<A: BitAgent> BitAgent for FaultyAgent<A> {
    fn on_bit(&mut self, level: Level, now: BitInstant) {
        let sof_edge = level.is_dominant() && self.idle_run >= IDLE_BITS_BEFORE_SOF;
        if level.is_recessive() {
            self.idle_run = self.idle_run.saturating_add(1);
        } else {
            self.idle_run = 0;
        }

        if sof_edge
            && self.config.sof_delay_prob > 0.0
            && self.config.sof_delay_bits > 0
            && self.rng.random_bool(self.config.sof_delay_prob)
        {
            self.sof_mask = self.config.sof_delay_bits;
        }
        if self.sof_mask > 0 {
            // The hard-sync interrupt has not fired yet: the agent still
            // believes the bus is idle.
            self.sof_mask -= 1;
            self.inner.on_bit(Level::Recessive, now);
            return;
        }

        if self.config.missed_bit_prob > 0.0 && self.rng.random_bool(self.config.missed_bit_prob) {
            return;
        }

        let seen = if self.config.sample_flip_prob > 0.0
            && self.rng.random_bool(self.config.sample_flip_prob)
        {
            level.opposite()
        } else {
            level
        };
        self.inner.on_bit(seen, now);
    }

    fn tx_level(&self) -> Option<Level> {
        self.inner.tx_level()
    }

    fn set_own_transmission(&mut self, transmitting: bool) {
        self.inner.set_own_transmission(transmitting);
    }

    fn drive_horizon(&self, now: BitInstant) -> Option<BitInstant> {
        // Pin faults only perturb what the inner agent *observes*; its TX
        // path is untouched, and its drive promise holds for arbitrary
        // input — perturbed or not — so it passes through unchanged.
        self.inner.drive_horizon(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_transparent() {
        let mut model = FaultModel::None;
        for t in 0..100 {
            assert_eq!(model.apply(Level::Recessive, t), Level::Recessive);
            assert_eq!(model.apply(Level::Dominant, t), Level::Dominant);
        }
    }

    #[test]
    fn scripted_flips_exact_bits() {
        let mut model = FaultModel::scripted(vec![5, 2, 5, 9]);
        let mut flipped = Vec::new();
        for t in 0..12 {
            if model.apply(Level::Recessive, t).is_dominant() {
                flipped.push(t);
            }
        }
        assert_eq!(flipped, vec![2, 5, 9]);
    }

    #[test]
    fn random_ber_matches_rate() {
        let mut model = FaultModel::random(0.01, 42);
        let flips = (0..100_000)
            .filter(|&t| model.apply(Level::Recessive, t).is_dominant())
            .count();
        assert!((800..=1_200).contains(&flips), "≈ 1 % of 100k: {flips}");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut m = FaultModel::random(0.05, seed);
            (0..1_000)
                .map(|t| m.apply(Level::Recessive, t))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    #[should_panic(expected = "BER must be a probability")]
    fn invalid_ber_panics() {
        let _ = FaultModel::random(1.5, 0);
    }

    #[test]
    fn zero_ber_never_flips() {
        let mut model = FaultModel::random(0.0, 1);
        for t in 0..10_000 {
            assert_eq!(model.apply(Level::Dominant, t), Level::Dominant);
        }
    }

    fn emi_burst() -> BurstParams {
        BurstParams {
            p_good_to_bad: 0.001,
            p_bad_to_good: 0.05,
            ber_good: 0.0,
            ber_bad: 0.3,
        }
    }

    #[test]
    fn bursty_errors_cluster() {
        // Same long-run error count, very different clustering: compare
        // gaps between errors for an iid channel and a GE channel of
        // equal mean BER.
        let params = emi_burst();
        let mean_ber = params.mean_ber();
        let errors = |model: &mut FaultModel| -> Vec<u64> {
            (0..500_000)
                .filter(|&t| model.apply(Level::Recessive, t).is_dominant())
                .collect()
        };
        let mut ge = FaultModel::bursty(params, 11);
        let mut iid = FaultModel::random(mean_ber, 11);
        let ge_errors = errors(&mut ge);
        let iid_errors = errors(&mut iid);

        // Comparable totals (same mean rate).
        let ratio = ge_errors.len() as f64 / iid_errors.len() as f64;
        assert!((0.5..=2.0).contains(&ratio), "rates comparable: {ratio}");

        // Clustering: the fraction of errors whose predecessor is within
        // 8 bits is far higher for the burst channel.
        let near = |errs: &[u64]| {
            errs.windows(2).filter(|w| w[1] - w[0] <= 8).count() as f64 / errs.len().max(1) as f64
        };
        assert!(
            near(&ge_errors) > 4.0 * near(&iid_errors),
            "GE {:.3} vs iid {:.3}",
            near(&ge_errors),
            near(&iid_errors)
        );
    }

    #[test]
    fn burst_params_mean_ber() {
        let p = emi_burst();
        let bad = 0.001 / 0.051;
        assert!((p.bad_state_fraction() - bad).abs() < 1e-12);
        assert!((p.mean_ber() - 0.3 * bad).abs() < 1e-12);
        let silent = BurstParams {
            p_good_to_bad: 0.0,
            p_bad_to_good: 0.0,
            ber_good: 0.0,
            ber_bad: 1.0,
        };
        assert_eq!(silent.bad_state_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "ber_bad must be a probability")]
    fn invalid_burst_params_panic() {
        let _ = FaultModel::bursty(
            BurstParams {
                p_good_to_bad: 0.1,
                p_bad_to_good: 0.1,
                ber_good: 0.0,
                ber_bad: 1.5,
            },
            0,
        );
    }

    #[test]
    fn stack_composes_layers_in_order() {
        // A scripted flip at t=3 under an otherwise transparent stack.
        let mut stack = FaultStack::new()
            .layer(FaultModel::None)
            .layer(FaultModel::scripted(vec![3]))
            .layer(FaultModel::scripted(vec![3, 7]));
        assert_eq!(stack.len(), 2, "transparent layers are dropped");
        // t=3: both layers flip — they cancel out.
        assert_eq!(stack.apply(Level::Recessive, 3), Level::Recessive);
        // t=7: only the second layer flips.
        assert_eq!(stack.apply(Level::Recessive, 7), Level::Dominant);
        assert_eq!(stack.apply(Level::Recessive, 8), Level::Recessive);
    }

    #[test]
    fn empty_stack_is_transparent() {
        let mut stack = FaultStack::new();
        assert!(stack.is_empty());
        for t in 0..50 {
            assert_eq!(stack.apply(Level::Dominant, t), Level::Dominant);
        }
    }

    #[test]
    fn stuck_dominant_holds_the_window() {
        let mut fault = TxFault::stuck_dominant(10, 20);
        assert_eq!(fault.tx_override(9), None);
        assert_eq!(fault.tx_override(10), Some(Level::Dominant));
        assert_eq!(fault.tx_override(19), Some(Level::Dominant));
        assert_eq!(fault.tx_override(20), None);
        assert!(!fault.is_down(15));
    }

    #[test]
    fn babbling_respects_duty_and_window() {
        let mut fault = TxFault::babbling(0, 100_000, 0.25, 9);
        let dominant = (0..100_000)
            .filter(|&t| fault.tx_override(t) == Some(Level::Dominant))
            .count();
        assert!((23_000..=27_000).contains(&dominant), "≈ 25 %: {dominant}");
        assert_eq!(fault.tx_override(100_000), None);
    }

    #[test]
    fn crash_restart_fires_reset_once() {
        let mut fault = TxFault::crash_restart(5, 10);
        assert!(!fault.is_down(4));
        assert!(fault.is_down(5));
        assert_eq!(fault.tx_override(7), Some(Level::Recessive));
        assert!(!fault.take_restart(9));
        assert!(fault.take_restart(10), "reset fires at the restart");
        assert!(!fault.take_restart(11), "reset fires only once");
        assert!(!fault.is_down(10));
    }

    #[test]
    #[should_panic(expected = "restart precedes the crash")]
    fn crash_restart_rejects_reversed_window() {
        let _ = TxFault::crash_restart(10, 5);
    }

    /// Records the levels an agent was shown.
    #[derive(Default)]
    struct Recorder {
        seen: Vec<Level>,
    }

    impl BitAgent for Recorder {
        fn on_bit(&mut self, level: Level, _now: BitInstant) {
            self.seen.push(level);
        }
        fn tx_level(&self) -> Option<Level> {
            None
        }
    }

    fn drive<A: BitAgent>(agent: &mut FaultyAgent<A>, wire: &[Level]) {
        for (t, &level) in wire.iter().enumerate() {
            agent.on_bit(level, BitInstant::from_bits(t as u64));
        }
    }

    #[test]
    fn healthy_pin_is_transparent() {
        let wire = [
            Level::Recessive,
            Level::Dominant,
            Level::Dominant,
            Level::Recessive,
            Level::Dominant,
        ];
        let mut agent = FaultyAgent::new(Recorder::default(), PinFaultConfig::default(), 1);
        drive(&mut agent, &wire);
        assert_eq!(agent.inner().seen, wire);
        assert!(agent.into_inner().seen.len() == wire.len());
    }

    #[test]
    fn boxed_inner_agent_works() {
        let inner: Box<dyn BitAgent> = Box::new(Recorder::default());
        let mut agent = FaultyAgent::new(inner, PinFaultConfig::default(), 1);
        agent.on_bit(Level::Dominant, BitInstant::ZERO);
        agent.set_own_transmission(true);
        assert_eq!(agent.tx_level(), None);
    }

    #[test]
    fn missed_bits_drop_samples() {
        struct Counter(u64);
        impl BitAgent for Counter {
            fn on_bit(&mut self, _l: Level, _n: BitInstant) {
                self.0 += 1;
            }
            fn tx_level(&self) -> Option<Level> {
                None
            }
        }
        let mut agent = FaultyAgent::new(
            Counter(0),
            PinFaultConfig {
                missed_bit_prob: 0.2,
                ..PinFaultConfig::default()
            },
            7,
        );
        for t in 0..10_000u64 {
            agent.on_bit(Level::Recessive, BitInstant::from_bits(t));
        }
        let delivered = agent.inner().0;
        assert!(
            (7_700..=8_300).contains(&delivered),
            "≈ 80 % delivered: {delivered}"
        );
    }

    #[test]
    fn delayed_sof_masks_the_frame_start() {
        struct FirstDominant(Option<u64>);
        impl BitAgent for FirstDominant {
            fn on_bit(&mut self, level: Level, now: BitInstant) {
                if level.is_dominant() && self.0.is_none() {
                    self.0 = Some(now.bits());
                }
            }
            fn tx_level(&self) -> Option<Level> {
                None
            }
        }
        // 12 idle bits, then a long dominant run (a frame start).
        let mut wire = vec![Level::Recessive; 12];
        wire.extend(std::iter::repeat_n(Level::Dominant, 6));

        // sof_delay_prob = 1: the SOF edge at t=12 must be masked for
        // exactly 3 bits, so the inner agent first sees dominant at t=15.
        let mut agent = FaultyAgent::new(
            FirstDominant(None),
            PinFaultConfig {
                sof_delay_prob: 1.0,
                sof_delay_bits: 3,
                ..PinFaultConfig::default()
            },
            3,
        );
        drive(&mut agent, &wire);
        assert_eq!(agent.sof_mask, 0, "the mask must be exhausted");
        assert_eq!(agent.inner().0, Some(15));
    }

    #[test]
    fn sample_flips_disturb_levels() {
        struct Flips(u64);
        impl BitAgent for Flips {
            fn on_bit(&mut self, level: Level, _n: BitInstant) {
                if level.is_dominant() {
                    self.0 += 1;
                }
            }
            fn tx_level(&self) -> Option<Level> {
                None
            }
        }
        let mut agent = FaultyAgent::new(
            Flips(0),
            PinFaultConfig {
                sample_flip_prob: 0.1,
                ..PinFaultConfig::default()
            },
            13,
        );
        // Feed only recessive; every dominant the inner sees is a flip.
        for t in 0..10_000u64 {
            agent.on_bit(Level::Recessive, BitInstant::from_bits(t));
        }
        let flipped = agent.inner().0;
        assert!(
            (800..=1_200).contains(&flipped),
            "≈ 10 % flipped: {flipped}"
        );
    }
}

//! A complete CAN 2.0A controller: arbitration, transmission, reception,
//! error signalling and fault confinement, stepped one bit time at a time.
//!
//! ## Timing convention
//!
//! The simulator runs a two-phase tick. For every nominal bit time `t`:
//!
//! 1. each controller's [`Controller::tx_level`] is collected and the bus
//!    computes the wired-AND;
//! 2. each controller's [`Controller::on_sample`] processes the resulting
//!    bus level.
//!
//! A decision made while sampling bit `t` therefore first affects the bus
//! at bit `t + 1` — the same one-bit reaction latency a real controller has
//! when it samples at ~70 % of the bit time.

use can_core::bitstream::{stuff_frame, IFS_BITS};
use can_core::errors::CanErrorKind;
use can_core::{counters, packed, BitInstant, CanFrame, ErrorCounters, ErrorState, Level};

use crate::event::{ErrorRole, EventKind};
use crate::parser::{RxEvent, RxParser};

/// Bits in an error flag (active or passive).
pub const ERROR_FLAG_BITS: u8 = 6;

/// Recessive bits in an error delimiter.
pub const ERROR_DELIMITER_BITS: u8 = 8;

/// Extra recessive bits an error-passive node waits after transmitting
/// (suspend transmission).
pub const SUSPEND_BITS: u8 = 8;

/// Configuration of a [`Controller`].
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Whether this controller acknowledges valid frames (dominant ACK
    /// slot). Disable for listen-only taps.
    pub ack_enabled: bool,
    /// Whether failed transmissions are retried (per ISO they always are;
    /// disable for single-shot experiments).
    pub retransmit: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            ack_enabled: true,
            retransmit: true,
        }
    }
}

/// An in-flight transmission.
#[derive(Debug, Clone)]
struct TxJob {
    frame: CanFrame,
    bits: Vec<Level>,
    /// Wire indices (into `bits`) that are stuff bits, sorted.
    stuff_positions: Vec<usize>,
    /// Wire index of the ACK slot.
    ack_index: usize,
    /// Number of bits already driven and sampled.
    index: usize,
    /// `bits` packed as dominant-mask words for the packed kernel.
    words: Vec<u64>,
}

impl TxJob {
    fn new(frame: CanFrame) -> Self {
        let wire = stuff_frame(&frame);
        // ACK slot is the second-to-10th bit from the end:
        // ... CRC delim | ACK slot | ACK delim | EOF(7)
        let ack_index = wire.bits.len() - 9;
        let words = packed::pack_words(&wire.bits);
        TxJob {
            frame,
            bits: wire.bits,
            stuff_positions: wire.stuff_positions,
            ack_index,
            index: 0,
            words,
        }
    }

    fn is_stuff_bit(&self, index: usize) -> bool {
        self.stuff_positions.binary_search(&index).is_ok()
    }
}

/// How a controller participates in one packed stretch (DESIGN.md §11).
///
/// Produced by [`Controller::stretch_plan`] (the `Down` variant is added by
/// the owning node for a crashed MCU) and consumed by the simulator's
/// packed kernel. A planner returning `None` instead means the controller
/// may emit an event, change state class or drive a reactive level at the
/// very next bit, so the simulator must run that bit in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StretchRole {
    /// The node's MCU is down (crash fault): contributes recessive and has
    /// no controller state to advance.
    Down,
    /// Transmitting mid-frame: drives `word` (dominant mask, LSB = the
    /// upcoming wire bit).
    Transmit {
        /// Packed TX levels for the next up-to-64 wire bits.
        word: u64,
    },
    /// Receiving mid-frame with no ACK drive pending: contributes only
    /// recessive; the stretch is additionally capped by a parser dry-run
    /// over the resolved bus word.
    Receive,
    /// Idle / intermission / suspend: contributes recessive and must end
    /// the stretch at the first dominant bus bit (it would join that frame
    /// as a receiver).
    Passive,
    /// Integrating (waiting for 11 recessive bits): contributes recessive;
    /// consumes mixed bus levels word-at-a-time.
    Integrating {
        /// Current count of consecutive recessive bits observed.
        recessive_run: u8,
    },
    /// Bus-off recovery countdown: contributes recessive; consumes mixed
    /// bus levels word-at-a-time.
    BusOff,
}

/// Bits of `bus` (at most `n`) an integrating controller with the given
/// recessive run can consume in one stretch.
///
/// Integration completing is not itself an event, but the first bit *after*
/// completion needs the full Idle logic (frame join on dominant,
/// transmission start with a pending mailbox), so the stretch stops right
/// after the completing bit.
pub(crate) fn integrating_word_cap(recessive_run: u8, bus: u64, n: u32) -> u32 {
    let mut run = recessive_run.min(10);
    for i in 0..n {
        if packed::level_at(bus, i).is_dominant() {
            run = 0;
        } else {
            run += 1;
            if run >= 11 {
                return i + 1;
            }
        }
    }
    n
}

/// Error-signalling sub-state.
#[derive(Debug, Clone)]
struct ErrSig {
    /// Active (dominant) or passive (recessive) flag.
    active: bool,
    /// Active flag: bits left to drive.
    flag_remaining: u8,
    /// Passive flag completion: run of consecutive equal levels observed.
    run_level: Option<Level>,
    run_len: u8,
    phase: ErrPhase,
    /// The node was the transmitter of the destroyed frame.
    was_transmitter: bool,
    /// The node detected the error as a receiver (for the severe REC rule).
    receiver_role: bool,
    /// Severe REC rule applied at most once per flag.
    severe_applied: bool,
    /// Transition to bus-off (instead of intermission) after the delimiter.
    then_bus_off: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrPhase {
    Flag,
    WaitRecessive,
    Delimiter(u8),
}

#[derive(Debug, Clone)]
enum State {
    /// Waiting for 11 consecutive recessive bits before joining the bus.
    Integrating {
        recessive_run: u8,
    },
    Idle,
    Receiving {
        parser: RxParser,
    },
    Transmitting {
        tx: TxJob,
        parser: RxParser,
    },
    ErrorSignaling(ErrSig),
    Intermission {
        remaining: u8,
        then_suspend: bool,
    },
    Suspend {
        remaining: u8,
    },
    BusOff {
        recessive_run: u8,
        sequences: u32,
    },
}

/// Callbacks surfaced by one [`Controller::on_sample`] step.
///
/// The owning node forwards these to its application and appends them to
/// the simulator event log.
#[derive(Debug, Default)]
pub struct StepOutput {
    /// Protocol events that occurred during this bit.
    pub events: Vec<EventKind>,
    /// A frame received for delivery to the application.
    pub received: Option<CanFrame>,
    /// A frame whose transmission completed successfully.
    pub transmitted: Option<CanFrame>,
}

impl StepOutput {
    /// Resets the output for reuse, keeping the events buffer's capacity
    /// (the simulator recycles one `StepOutput` across every node and bit
    /// to keep the per-bit hot path allocation-free).
    pub fn clear(&mut self) {
        self.events.clear();
        self.received = None;
        self.transmitted = None;
    }
}

/// A full CAN 2.0A controller stepped at bit granularity.
#[derive(Debug)]
pub struct Controller {
    config: ControllerConfig,
    counters: ErrorCounters,
    state: State,
    /// Transmit mailboxes: at most one pending frame per identifier;
    /// lowest identifier transmits first.
    pending: Vec<CanFrame>,
    /// Drive a dominant ACK during the next bit.
    drive_ack: bool,
    last_reported_state: ErrorState,
}

impl Controller {
    /// Creates a controller in the integrating state (it joins the bus
    /// after 11 recessive bits).
    pub fn new(config: ControllerConfig) -> Self {
        Controller {
            config,
            counters: ErrorCounters::new(),
            state: State::Integrating { recessive_run: 0 },
            pending: Vec::new(),
            drive_ack: false,
            last_reported_state: ErrorState::ErrorActive,
        }
    }

    /// Hardware-style reset: error counters cleared, mailboxes flushed,
    /// back to the integrating state (11 recessive bits before rejoining).
    /// Models an MCU restart after a transient crash.
    pub fn reset(&mut self) {
        self.counters = ErrorCounters::new();
        self.state = State::Integrating { recessive_run: 0 };
        self.pending.clear();
        self.drive_ack = false;
        self.last_reported_state = ErrorState::ErrorActive;
    }

    /// The controller's error counters.
    pub fn counters(&self) -> ErrorCounters {
        self.counters
    }

    /// The fault-confinement state.
    pub fn error_state(&self) -> ErrorState {
        if matches!(self.state, State::BusOff { .. }) {
            ErrorState::BusOff
        } else {
            self.counters.state()
        }
    }

    /// Whether the controller is currently transmitting (and has not lost
    /// arbitration).
    pub fn is_transmitting(&self) -> bool {
        matches!(self.state, State::Transmitting { .. })
    }

    /// Whether the controller is in bus-off.
    pub fn is_bus_off(&self) -> bool {
        matches!(self.state, State::BusOff { .. })
    }

    /// Whether the controller considers the bus occupied by a frame or
    /// error condition (used for bus-load accounting).
    pub fn is_busy(&self) -> bool {
        matches!(
            self.state,
            State::Transmitting { .. } | State::Receiving { .. } | State::ErrorSignaling(_)
        )
    }

    /// Number of frames waiting in transmit mailboxes.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Places a frame in its transmit mailbox (one per identifier; a newer
    /// frame with the same identifier overwrites the older one, like a
    /// hardware mailbox).
    pub fn enqueue(&mut self, frame: CanFrame) {
        if let Some(slot) = self.pending.iter_mut().find(|f| f.id() == frame.id()) {
            *slot = frame;
        } else {
            self.pending.push(frame);
        }
    }

    fn take_highest_priority_pending(&mut self) -> Option<CanFrame> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| f.id())?
            .0;
        Some(self.pending.swap_remove(best))
    }

    /// Re-queues a frame whose transmission failed, unless the application
    /// has meanwhile posted a newer frame with the same identifier.
    fn requeue(&mut self, frame: CanFrame) {
        if !self.config.retransmit {
            return;
        }
        if !self.pending.iter().any(|f| f.id() == frame.id()) {
            self.pending.push(frame);
        }
    }

    /// The level this controller drives during the upcoming bit time.
    pub fn tx_level(&self) -> Level {
        match &self.state {
            State::Transmitting { tx, .. } => tx.bits[tx.index],
            State::ErrorSignaling(sig) if sig.phase == ErrPhase::Flag && sig.active => {
                Level::Dominant
            }
            State::Receiving { .. } if self.drive_ack => Level::Dominant,
            _ => Level::Recessive,
        }
    }

    /// Processes the bus level sampled during the current bit time.
    pub fn on_sample(&mut self, bus: Level, now: BitInstant) -> StepOutput {
        let mut out = StepOutput::default();
        self.on_sample_into(bus, now, &mut out);
        out
    }

    /// [`Controller::on_sample`] writing into a caller-provided output.
    ///
    /// `out` must be [`StepOutput::clear`]ed (or fresh); reusing one
    /// buffer across bits avoids a per-bit allocation on the simulator's
    /// hot path.
    pub fn on_sample_into(&mut self, bus: Level, now: BitInstant, out: &mut StepOutput) {
        // The ACK drive is one-shot: the bit being processed was the slot.
        self.drive_ack = false;

        // `state` is replaced wholesale to keep the borrow checker happy.
        let state = std::mem::replace(&mut self.state, State::Idle);
        self.state = match state {
            State::Integrating { recessive_run } => {
                let run = if bus.is_recessive() {
                    recessive_run + 1
                } else {
                    0
                };
                if run >= 11 {
                    State::Idle
                } else {
                    State::Integrating { recessive_run: run }
                }
            }
            State::Idle => self.sample_idle(bus, now, out),
            State::Receiving { parser } => self.sample_receiving(parser, bus, now, out),
            State::Transmitting { tx, parser } => {
                self.sample_transmitting(tx, parser, bus, now, out)
            }
            State::ErrorSignaling(sig) => self.sample_error(sig, bus, now, out),
            State::Intermission {
                remaining,
                then_suspend,
            } => self.sample_intermission(remaining, then_suspend, bus, now, out),
            State::Suspend { remaining } => self.sample_suspend(remaining, bus, now, out),
            State::BusOff {
                recessive_run,
                sequences,
            } => self.sample_bus_off(recessive_run, sequences, bus, out),
        };

        self.report_state_change(out);
    }

    fn report_state_change(&mut self, out: &mut StepOutput) {
        let state = self.error_state();
        if state != self.last_reported_state {
            self.last_reported_state = state;
            out.events.push(EventKind::ErrorStateChanged { state });
        }
    }

    fn start_transmission(&mut self, out: &mut StepOutput) -> State {
        match self.take_highest_priority_pending() {
            Some(frame) => {
                out.events
                    .push(EventKind::TransmissionStarted { id: frame.id() });
                State::Transmitting {
                    tx: TxJob::new(frame),
                    parser: RxParser::new(),
                }
            }
            None => State::Idle,
        }
    }

    fn join_as_receiver(&mut self, sof: Level, now: BitInstant, out: &mut StepOutput) -> State {
        debug_assert!(sof.is_dominant(), "joining requires a dominant SOF");
        let parser = RxParser::new();
        self.sample_receiving(parser, sof, now, out)
    }

    fn sample_idle(&mut self, bus: Level, now: BitInstant, out: &mut StepOutput) -> State {
        if bus.is_dominant() {
            self.join_as_receiver(bus, now, out)
        } else if !self.pending.is_empty() {
            self.start_transmission(out)
        } else {
            State::Idle
        }
    }

    fn sample_receiving(
        &mut self,
        mut parser: RxParser,
        bus: Level,
        _now: BitInstant,
        out: &mut StepOutput,
    ) -> State {
        match parser.push(bus) {
            RxEvent::Continue => State::Receiving { parser },
            RxEvent::AckSlotNext => {
                if self.config.ack_enabled {
                    self.drive_ack = true;
                }
                State::Receiving { parser }
            }
            RxEvent::Done(frame) => {
                self.counters.on_receive_success();
                out.events.push(EventKind::FrameReceived { frame });
                out.received = Some(frame);
                State::Intermission {
                    remaining: IFS_BITS as u8,
                    then_suspend: false,
                }
            }
            RxEvent::Fault(kind) => {
                self.counters.on_receive_error();
                out.events.push(EventKind::ErrorDetected {
                    kind,
                    role: ErrorRole::Receiver,
                });
                State::ErrorSignaling(self.new_error_signal(false, true, false))
            }
        }
    }

    fn sample_transmitting(
        &mut self,
        mut tx: TxJob,
        mut parser: RxParser,
        bus: Level,
        now: BitInstant,
        out: &mut StepOutput,
    ) -> State {
        let sent = tx.bits[tx.index];
        let in_arbitration = parser.in_arbitration();
        let rx_event = parser.push(bus);
        let mismatch = sent != bus;

        if mismatch {
            if in_arbitration && sent.is_recessive() && bus.is_dominant() {
                // Lost arbitration: continue as receiver of the winner.
                out.events
                    .push(EventKind::ArbitrationLost { id: tx.frame.id() });
                self.requeue(tx.frame);
                // The parser already consumed this bit; stay receiving.
                return match rx_event {
                    RxEvent::Fault(kind) => {
                        self.counters.on_receive_error();
                        out.events.push(EventKind::ErrorDetected {
                            kind,
                            role: ErrorRole::Receiver,
                        });
                        State::ErrorSignaling(self.new_error_signal(false, true, false))
                    }
                    _ => State::Receiving { parser },
                };
            }
            if tx.index == tx.ack_index && bus.is_dominant() {
                // A receiver acknowledged the frame; not an error.
                tx.index += 1;
                return State::Transmitting { tx, parser };
            }
            // Bit or stuff error in our own transmission.
            let kind = if tx.is_stuff_bit(tx.index) {
                CanErrorKind::Stuff
            } else {
                CanErrorKind::Bit
            };
            return self.transmit_error(tx, kind, now, out);
        }

        // Levels matched.
        if tx.index == tx.ack_index && bus.is_recessive() {
            // Nobody acknowledged.
            return self.transmit_ack_error(tx, now, out);
        }

        tx.index += 1;
        if tx.index == tx.bits.len() {
            self.counters.on_transmit_success();
            out.events
                .push(EventKind::TransmissionSucceeded { frame: tx.frame });
            out.transmitted = Some(tx.frame);
            let then_suspend = self.counters.state() == ErrorState::ErrorPassive;
            return State::Intermission {
                remaining: IFS_BITS as u8,
                then_suspend,
            };
        }
        State::Transmitting { tx, parser }
    }

    fn transmit_error(
        &mut self,
        tx: TxJob,
        kind: CanErrorKind,
        _now: BitInstant,
        out: &mut StepOutput,
    ) -> State {
        // Flag polarity follows the state *before* the increment (paper
        // Fig. 6: the 16th error is still signalled with an active flag).
        let active_before = self.counters.state() == ErrorState::ErrorActive;
        let new_state = self.counters.on_transmit_error();
        out.events.push(EventKind::ErrorDetected {
            kind,
            role: ErrorRole::Transmitter,
        });
        self.requeue(tx.frame);
        let mut sig = self.new_error_signal(true, false, active_before);
        if new_state == ErrorState::BusOff {
            sig.then_bus_off = true;
        }
        State::ErrorSignaling(sig)
    }

    fn transmit_ack_error(&mut self, tx: TxJob, _now: BitInstant, out: &mut StepOutput) -> State {
        let active_before = self.counters.state() == ErrorState::ErrorActive;
        // ISO 11898-1 exception: an error-passive transmitter detecting an
        // ACK error (and no dominant bit during its passive flag) does not
        // increment its TEC. A lone node on a bus therefore never reaches
        // bus-off through missing acknowledgments.
        let new_state = if active_before {
            self.counters.on_transmit_error()
        } else {
            self.counters.state()
        };
        out.events.push(EventKind::ErrorDetected {
            kind: CanErrorKind::Ack,
            role: ErrorRole::Transmitter,
        });
        self.requeue(tx.frame);
        let mut sig = self.new_error_signal(true, false, active_before);
        if new_state == ErrorState::BusOff {
            sig.then_bus_off = true;
        }
        State::ErrorSignaling(sig)
    }

    fn new_error_signal(&self, was_transmitter: bool, receiver_role: bool, active: bool) -> ErrSig {
        ErrSig {
            active,
            flag_remaining: ERROR_FLAG_BITS,
            run_level: None,
            run_len: 0,
            phase: ErrPhase::Flag,
            was_transmitter,
            receiver_role,
            severe_applied: false,
            then_bus_off: false,
        }
    }

    fn sample_error(
        &mut self,
        mut sig: ErrSig,
        bus: Level,
        now: BitInstant,
        out: &mut StepOutput,
    ) -> State {
        match sig.phase {
            ErrPhase::Flag => {
                if sig.active {
                    // We are driving dominant; count our six flag bits.
                    sig.flag_remaining -= 1;
                    if sig.flag_remaining == 0 {
                        sig.phase = ErrPhase::WaitRecessive;
                    }
                } else {
                    // Passive flag: complete after six consecutive equal
                    // levels on the bus (our own recessive or others'
                    // dominant flags).
                    match sig.run_level {
                        Some(level) if level == bus => sig.run_len += 1,
                        _ => {
                            sig.run_level = Some(bus);
                            sig.run_len = 1;
                        }
                    }
                    if sig.run_len >= ERROR_FLAG_BITS {
                        sig.phase = ErrPhase::WaitRecessive;
                    }
                }
                State::ErrorSignaling(sig)
            }
            ErrPhase::WaitRecessive => {
                if bus.is_recessive() {
                    // First delimiter bit observed.
                    sig.phase = ErrPhase::Delimiter(ERROR_DELIMITER_BITS - 1);
                    State::ErrorSignaling(sig)
                } else {
                    // Someone is still flagging (superposed error flags).
                    if sig.receiver_role && !sig.severe_applied {
                        // Dominant right after our error flag: REC += 8.
                        sig.severe_applied = true;
                        self.counters.on_receive_error_severe();
                    }
                    State::ErrorSignaling(sig)
                }
            }
            ErrPhase::Delimiter(remaining) => {
                if bus.is_dominant() {
                    // A dominant bit inside the delimiter restarts the wait
                    // (superposed late flags; overload handling is out of
                    // scope).
                    sig.phase = ErrPhase::WaitRecessive;
                    return State::ErrorSignaling(sig);
                }
                if remaining > 1 {
                    sig.phase = ErrPhase::Delimiter(remaining - 1);
                    State::ErrorSignaling(sig)
                } else if sig.then_bus_off {
                    out.events.push(EventKind::BusOff);
                    let _ = now;
                    State::BusOff {
                        recessive_run: 0,
                        sequences: 0,
                    }
                } else {
                    let then_suspend =
                        sig.was_transmitter && self.counters.state() == ErrorState::ErrorPassive;
                    State::Intermission {
                        remaining: IFS_BITS as u8,
                        then_suspend,
                    }
                }
            }
        }
    }

    fn sample_intermission(
        &mut self,
        remaining: u8,
        then_suspend: bool,
        bus: Level,
        now: BitInstant,
        out: &mut StepOutput,
    ) -> State {
        if bus.is_dominant() {
            // Another node's SOF (a dominant bit during intermission is
            // interpreted as a start of frame; overload frames are not
            // modelled).
            return self.join_as_receiver(bus, now, out);
        }
        if remaining > 1 {
            State::Intermission {
                remaining: remaining - 1,
                then_suspend,
            }
        } else if then_suspend {
            State::Suspend {
                remaining: SUSPEND_BITS,
            }
        } else if !self.pending.is_empty() {
            self.start_transmission(out)
        } else {
            State::Idle
        }
    }

    fn sample_suspend(
        &mut self,
        remaining: u8,
        bus: Level,
        now: BitInstant,
        out: &mut StepOutput,
    ) -> State {
        if bus.is_dominant() {
            // Another node started first; we join as receiver and compete
            // again afterwards (ISO 11898-1 suspend-transmission rule,
            // central to the paper's Experiment 5 analysis).
            return self.join_as_receiver(bus, now, out);
        }
        if remaining > 1 {
            State::Suspend {
                remaining: remaining - 1,
            }
        } else if !self.pending.is_empty() {
            self.start_transmission(out)
        } else {
            State::Idle
        }
    }

    /// The earliest bit time at or after `now` at which this controller
    /// may emit an event, drive a non-recessive level or otherwise needs
    /// per-bit processing — **assuming the bus stays recessive and the
    /// mailboxes unchanged until then**. `None` means "never" under those
    /// assumptions (e.g. idle with nothing pending).
    ///
    /// This is the controller's half of the simulator's quiescence
    /// contract: for any horizon `h` returned, feeding the controller
    /// `h - now` recessive samples via [`Controller::advance_idle`] is
    /// exactly equivalent to the per-bit path and produces no events.
    pub fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        let pending = !self.pending.is_empty();
        let at = |offset: u64| Some(now + can_core::BitDuration::bits(offset));
        match &self.state {
            // `recessive_run` hits 11 one bit before the offset below, so
            // the controller is Idle at the horizon bit and starts its
            // transmission (event!) right there.
            State::Integrating { recessive_run } => {
                if pending {
                    at(u64::from(11 - (*recessive_run).min(10)))
                } else {
                    None
                }
            }
            State::Idle => {
                if pending {
                    Some(now)
                } else {
                    None
                }
            }
            // Active frame or error handling: every bit matters.
            State::Receiving { .. } | State::Transmitting { .. } | State::ErrorSignaling(_) => {
                Some(now)
            }
            // Intermission consumes exactly `remaining` recessive samples;
            // the last one either starts a pending transmission (event at
            // `now + remaining - 1`) or chains into suspend-transmission.
            State::Intermission {
                remaining,
                then_suspend,
            } => match (pending, then_suspend) {
                (false, _) => None,
                (true, false) => at(u64::from(remaining - 1)),
                (true, true) => at(u64::from(*remaining) + u64::from(SUSPEND_BITS) - 1),
            },
            State::Suspend { remaining } => {
                if pending {
                    at(u64::from(remaining - 1))
                } else {
                    None
                }
            }
            // Bus-off recovery is a pure countdown on a recessive bus; the
            // `Recovered` event fires at the last of the required samples.
            State::BusOff {
                recessive_run,
                sequences,
            } => {
                let to_sequence =
                    u64::from(counters::RECOVERY_SEQUENCE_BITS) - u64::from(*recessive_run).min(10);
                let full_sequences = u64::from(counters::RECOVERY_SEQUENCES - *sequences - 1);
                at(to_sequence + full_sequences * u64::from(counters::RECOVERY_SEQUENCE_BITS) - 1)
            }
        }
    }

    /// Advances the controller over `bits` consecutive recessive bus
    /// samples in closed form — exactly equivalent to `bits` calls of
    /// `on_sample(Level::Recessive, _)`, given that the window lies inside
    /// a horizon declared by [`Controller::next_activity`] (so no events,
    /// no transmission starts, no recovery completes inside it).
    pub fn advance_idle(&mut self, bits: u64) {
        let mut left = bits;
        while left > 0 {
            match &mut self.state {
                State::Integrating { recessive_run } => {
                    let need = u64::from(11 - (*recessive_run).min(10));
                    if left >= need {
                        left -= need;
                        self.state = State::Idle;
                    } else {
                        *recessive_run += left as u8;
                        return;
                    }
                }
                State::Idle => return,
                State::Intermission {
                    remaining,
                    then_suspend,
                } => {
                    let need = u64::from(*remaining);
                    if left >= need {
                        left -= need;
                        // With a pending frame the declared horizon ends
                        // one bit before the exit sample, so this branch
                        // (and the Idle exit below) only runs when the
                        // exit cannot start a transmission.
                        self.state = if *then_suspend {
                            State::Suspend {
                                remaining: SUSPEND_BITS,
                            }
                        } else {
                            State::Idle
                        };
                    } else {
                        *remaining -= left as u8;
                        return;
                    }
                }
                State::Suspend { remaining } => {
                    let need = u64::from(*remaining);
                    if left >= need {
                        left -= need;
                        self.state = State::Idle;
                    } else {
                        *remaining -= left as u8;
                        return;
                    }
                }
                State::BusOff {
                    recessive_run,
                    sequences,
                } => {
                    // Closed-form countdown; the quiescence horizon
                    // guarantees recovery does not complete in the window.
                    let total = u64::from(*recessive_run) + left;
                    *sequences += (total / u64::from(counters::RECOVERY_SEQUENCE_BITS)) as u32;
                    *recessive_run = (total % u64::from(counters::RECOVERY_SEQUENCE_BITS)) as u8;
                    debug_assert!(*sequences < counters::RECOVERY_SEQUENCES);
                    return;
                }
                State::Receiving { .. } | State::Transmitting { .. } | State::ErrorSignaling(_) => {
                    unreachable!("advance_idle called on a busy controller")
                }
            }
        }
    }

    /// The controller's half of the packed kernel's stretch negotiation
    /// (DESIGN.md §11).
    ///
    /// Returns how this controller participates in a stretch starting at
    /// `now`, lowering `*cap` (in bits, already ≤ 64) to the last bit it
    /// can cover without per-bit processing, or `None` when the very next
    /// bit needs the lockstep path: a pending ACK drive, error signalling,
    /// idle with a queued frame, the ACK slot or final bit of its own
    /// transmission.
    ///
    /// The plan has no side effects; the simulator may discard it and run
    /// lockstep instead at any point.
    pub(crate) fn stretch_plan(&self, now: BitInstant, cap: &mut u64) -> Option<StretchRole> {
        if self.drive_ack {
            return None; // drives a dominant ACK during the next bit
        }
        let horizon_cap = |cap: &mut u64| -> bool {
            // Caps at the controller's own quiescence horizon, which for
            // the countdown states below is the bit at which an event
            // (transmission start, recovery) could fire assuming an
            // all-recessive bus. Mixed traffic only delays those, so the
            // horizon is a sound stretch bound either way.
            match self.next_activity(now) {
                Some(h) if h <= now => false,
                Some(h) => {
                    *cap = (*cap).min(h.bits() - now.bits());
                    true
                }
                None => true,
            }
        };
        match &self.state {
            State::Receiving { .. } => Some(StretchRole::Receive),
            State::Transmitting { tx, .. } => {
                // Stop before the ACK slot (a receiver answers there) and
                // before the final bit (transmit-success event).
                let mut tx_cap = tx.bits.len() - 1 - tx.index;
                if tx.index <= tx.ack_index {
                    tx_cap = tx_cap.min(tx.ack_index - tx.index);
                }
                if tx_cap == 0 {
                    return None;
                }
                *cap = (*cap).min(tx_cap as u64);
                Some(StretchRole::Transmit {
                    word: packed::extract_window(&tx.words, tx.index),
                })
            }
            State::ErrorSignaling(_) => None,
            State::Idle => {
                if self.pending.is_empty() {
                    Some(StretchRole::Passive)
                } else {
                    None // starts its SOF at the next recessive sample
                }
            }
            State::Intermission { .. } | State::Suspend { .. } => {
                horizon_cap(cap).then_some(StretchRole::Passive)
            }
            State::Integrating { recessive_run } => {
                horizon_cap(cap).then_some(StretchRole::Integrating {
                    recessive_run: *recessive_run,
                })
            }
            State::BusOff { .. } => horizon_cap(cap).then_some(StretchRole::BusOff),
        }
    }

    /// Commits `n` event-free bits of the controller's own transmission.
    ///
    /// The resolved bus matched the sent word over the whole window, so
    /// the lockstep path would discard every parser event (the receive
    /// parser of a transmitter only matters on a mismatch) and advance the
    /// wire index — which is exactly what this does.
    pub(crate) fn commit_transmit(&mut self, n: u32) {
        let State::Transmitting { tx, parser } = &mut self.state else {
            unreachable!("commit_transmit on a non-transmitting controller")
        };
        for i in 0..n as usize {
            let _ = parser.push(tx.bits[tx.index + i]);
        }
        tx.index += n as usize;
        debug_assert!(tx.index < tx.bits.len());
    }

    /// Dry-runs the receive parser over the low `n` bits of `bus` on the
    /// reusable `scratch` parser: returns how many leading bits produce
    /// `RxEvent::Continue`. The bit that would produce any other event
    /// (ACK-slot announcement, frame completion, fault) is left to the
    /// lockstep path.
    ///
    /// When the return value equals `n`, `scratch` holds the post-stretch
    /// parser state and [`Controller::commit_receive_swap`] can install it
    /// in O(1); otherwise `scratch` has consumed the event bit and must be
    /// discarded.
    pub(crate) fn receive_stretch_cap(&self, bus: u64, n: u32, scratch: &mut RxParser) -> u32 {
        let State::Receiving { parser } = &self.state else {
            unreachable!("receive_stretch_cap on a non-receiving controller")
        };
        parser.copy_into(scratch);
        for i in 0..n {
            if scratch.push(packed::level_at(bus, i)) != RxEvent::Continue {
                return i;
            }
        }
        n
    }

    /// Installs a dry-run parser state produced by
    /// [`Controller::receive_stretch_cap`] (which must have covered exactly
    /// the committed stretch length, event-free).
    pub(crate) fn commit_receive_swap(&mut self, scratch: &mut RxParser) {
        let State::Receiving { parser } = &mut self.state else {
            unreachable!("commit_receive_swap on a non-receiving controller")
        };
        std::mem::swap(parser, scratch);
    }

    /// Commits `n` event-free received bits by replaying them into the
    /// live parser (used when the stretch was shortened after this node's
    /// dry run, so the scratch parser overshot).
    pub(crate) fn commit_receive_push(&mut self, bus: u64, n: u32) {
        let State::Receiving { parser } = &mut self.state else {
            unreachable!("commit_receive_push on a non-receiving controller")
        };
        for i in 0..n {
            let event = parser.push(packed::level_at(bus, i));
            debug_assert_eq!(event, RxEvent::Continue);
        }
    }

    /// Commits `n` bits of mixed bus levels for the word-aware countdown
    /// states (integrating, bus-off recovery).
    ///
    /// The stretch caps guarantee neither integration completion followed
    /// by further bits (see [`integrating_word_cap`]) nor recovery
    /// completion can occur inside the window.
    pub(crate) fn commit_passive_word(&mut self, bus: u64, n: u32) {
        match &mut self.state {
            State::Integrating { recessive_run } => {
                let mut run = *recessive_run;
                let mut completed = false;
                for i in 0..n {
                    if packed::level_at(bus, i).is_dominant() {
                        run = 0;
                    } else {
                        run += 1;
                        if run >= 11 {
                            debug_assert_eq!(i, n - 1, "stretch must stop at completion");
                            completed = true;
                            break;
                        }
                    }
                }
                *recessive_run = run;
                if completed {
                    self.state = State::Idle;
                }
            }
            State::BusOff {
                recessive_run,
                sequences,
            } => {
                for i in 0..n {
                    if packed::level_at(bus, i).is_dominant() {
                        *recessive_run = 0;
                    } else {
                        *recessive_run += 1;
                        if u32::from(*recessive_run) == counters::RECOVERY_SEQUENCE_BITS {
                            *recessive_run = 0;
                            *sequences += 1;
                            debug_assert!(*sequences < counters::RECOVERY_SEQUENCES);
                        }
                    }
                }
            }
            _ => unreachable!("commit_passive_word on a non-countdown controller"),
        }
    }

    fn sample_bus_off(
        &mut self,
        recessive_run: u8,
        sequences: u32,
        bus: Level,
        out: &mut StepOutput,
    ) -> State {
        if bus.is_dominant() {
            return State::BusOff {
                recessive_run: 0,
                sequences,
            };
        }
        let run = recessive_run + 1;
        if run as u32 == counters::RECOVERY_SEQUENCE_BITS {
            let sequences = sequences + 1;
            if sequences >= counters::RECOVERY_SEQUENCES {
                self.counters.reset_after_recovery();
                out.events.push(EventKind::Recovered);
                return State::Idle;
            }
            State::BusOff {
                recessive_run: 0,
                sequences,
            }
        } else {
            State::BusOff {
                recessive_run: run,
                sequences,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use can_core::CanId;

    fn frame(id: u16, data: &[u8]) -> CanFrame {
        CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
    }

    /// Drives a set of controllers through one tick; returns the bus level.
    fn tick(controllers: &mut [Controller], now: u64) -> (Level, Vec<StepOutput>) {
        let bus = Level::wired_and(controllers.iter().map(|c| c.tx_level()));
        let outs = controllers
            .iter_mut()
            .map(|c| c.on_sample(bus, BitInstant::from_bits(now)))
            .collect();
        (bus, outs)
    }

    fn run(controllers: &mut [Controller], ticks: u64) -> Vec<(u64, usize, EventKind)> {
        let mut events = Vec::new();
        for t in 0..ticks {
            let (_, outs) = tick(controllers, t);
            for (i, out) in outs.into_iter().enumerate() {
                for kind in out.events {
                    events.push((t, i, kind));
                }
            }
        }
        events
    }

    #[test]
    fn lone_frame_is_lost_without_ack_but_node_survives() {
        // A lone transmitter never gets an ACK: ACK errors forever, but the
        // ISO exception caps its TEC at the passive threshold.
        let mut nodes = vec![Controller::new(ControllerConfig::default())];
        nodes[0].enqueue(frame(0x100, &[1, 2]));
        let events = run(&mut nodes, 20_000);
        assert!(events.iter().any(|(_, _, k)| matches!(
            k,
            EventKind::ErrorDetected {
                kind: CanErrorKind::Ack,
                ..
            }
        )));
        assert!(!nodes[0].is_bus_off());
        assert_eq!(nodes[0].error_state(), ErrorState::ErrorPassive);
    }

    #[test]
    fn two_nodes_exchange_a_frame() {
        let mut nodes = vec![
            Controller::new(ControllerConfig::default()),
            Controller::new(ControllerConfig::default()),
        ];
        nodes[0].enqueue(frame(0x123, &[0xDE, 0xAD]));
        let events = run(&mut nodes, 400);
        let received = events.iter().find_map(|(_, node, k)| match k {
            EventKind::FrameReceived { frame } => Some((*node, *frame)),
            _ => None,
        });
        assert_eq!(received, Some((1, frame(0x123, &[0xDE, 0xAD]))));
        assert!(
            events
                .iter()
                .any(|(_, node, k)| *node == 0
                    && matches!(k, EventKind::TransmissionSucceeded { .. }))
        );
        // A successful exchange leaves both nodes error-active with clean
        // counters.
        assert_eq!(nodes[0].counters().tec(), 0);
        assert_eq!(nodes[1].counters().rec(), 0);
    }

    #[test]
    fn arbitration_is_won_by_the_lower_id() {
        let mut nodes = vec![
            Controller::new(ControllerConfig::default()),
            Controller::new(ControllerConfig::default()),
            Controller::new(ControllerConfig::default()),
        ];
        // Enqueue in both before either can start: they SOF simultaneously.
        nodes[0].enqueue(frame(0x300, &[1]));
        nodes[1].enqueue(frame(0x0F0, &[2]));
        let events = run(&mut nodes, 800);

        let lost: Vec<_> = events
            .iter()
            .filter_map(|(t, node, k)| match k {
                EventKind::ArbitrationLost { id } => Some((*t, *node, *id)),
                _ => None,
            })
            .collect();
        assert_eq!(lost.len(), 1, "exactly one arbitration loss: {events:?}");
        assert_eq!(lost[0].1, 0, "node 0 (higher id) must lose");

        let successes: Vec<_> = events
            .iter()
            .filter_map(|(t, node, k)| match k {
                EventKind::TransmissionSucceeded { frame } => Some((*t, *node, frame.id())),
                _ => None,
            })
            .collect();
        assert_eq!(successes.len(), 2, "both frames eventually complete");
        assert_eq!(successes[0].1, 1, "0x0F0 completes first");
        assert_eq!(successes[1].1, 0, "0x300 retries and completes");
    }

    #[test]
    fn both_transmissions_start_simultaneously_and_winner_is_not_errored() {
        let mut nodes = vec![
            Controller::new(ControllerConfig::default()),
            Controller::new(ControllerConfig::default()),
        ];
        nodes[0].enqueue(frame(0x005, &[1]));
        nodes[1].enqueue(frame(0x006, &[2]));
        let events = run(&mut nodes, 600);
        // Arbitration must never produce an error.
        assert!(
            !events
                .iter()
                .any(|(_, _, k)| matches!(k, EventKind::ErrorDetected { .. })),
            "arbitration losses are not errors: {events:?}"
        );
        assert_eq!(nodes[0].counters().tec(), 0);
        assert_eq!(nodes[1].counters().tec(), 0);
    }

    #[test]
    fn mailbox_overwrites_same_id() {
        let mut c = Controller::new(ControllerConfig::default());
        c.enqueue(frame(0x10, &[1]));
        c.enqueue(frame(0x10, &[2]));
        assert_eq!(c.pending_count(), 1);
        c.enqueue(frame(0x11, &[3]));
        assert_eq!(c.pending_count(), 2);
    }

    #[test]
    fn integrating_requires_eleven_recessive_bits() {
        let mut c = Controller::new(ControllerConfig::default());
        c.enqueue(frame(0x1, &[]));
        // Interrupt the integration with a dominant bit after 10 recessive.
        for t in 0..10 {
            c.on_sample(Level::Recessive, BitInstant::from_bits(t));
            assert_eq!(c.tx_level(), Level::Recessive);
        }
        c.on_sample(Level::Dominant, BitInstant::from_bits(10));
        // Ten more recessive bits are not enough (run restarted)...
        for t in 11..21 {
            c.on_sample(Level::Recessive, BitInstant::from_bits(t));
        }
        assert_eq!(c.tx_level(), Level::Recessive, "still integrating");
        // ...the eleventh completes integration; it is Idle during that
        // sample and starts its SOF right afterwards.
        c.on_sample(Level::Recessive, BitInstant::from_bits(21));
        c.on_sample(Level::Recessive, BitInstant::from_bits(22));
        assert_eq!(c.tx_level(), Level::Dominant, "SOF after joining");
    }

    #[test]
    fn transmit_success_decrements_tec() {
        let mut nodes = vec![
            Controller::new(ControllerConfig::default()),
            Controller::new(ControllerConfig::default()),
        ];
        // Pre-load some TEC on node 0 by direct counter manipulation (unit
        // scope: we only check the success path decrements).
        for _ in 0..4 {
            nodes[0].counters.on_transmit_error();
        }
        assert_eq!(nodes[0].counters().tec(), 32);
        nodes[0].enqueue(frame(0x055, &[7; 7]));
        run(&mut nodes, 400);
        assert_eq!(nodes[0].counters().tec(), 31);
    }
}

//! Simulation events.
//!
//! The simulator appends one [`Event`] per notable protocol occurrence.
//! Benchmarks and tests reconstruct every paper metric (bus-off time,
//! retransmission counts, interruption counts) from this log.

use can_core::errors::CanErrorKind;
use can_core::{BitInstant, CanFrame, CanId, ErrorState};

/// Index of a node within its simulator.
pub type NodeId = usize;

/// Whether a node detected an error as the frame's transmitter or as a
/// receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorRole {
    /// The node was transmitting the affected frame.
    Transmitter,
    /// The node was receiving.
    Receiver,
}

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A node drove the SOF of a frame (first bit on the bus).
    TransmissionStarted {
        /// Identifier of the frame being transmitted.
        id: CanId,
    },
    /// A node completed a transmission successfully (end of EOF).
    TransmissionSucceeded {
        /// The transmitted frame.
        frame: CanFrame,
    },
    /// A node received a complete valid frame.
    FrameReceived {
        /// The received frame.
        frame: CanFrame,
    },
    /// A node lost arbitration and turned into a receiver.
    ArbitrationLost {
        /// Identifier the node was trying to send.
        id: CanId,
    },
    /// A node detected a protocol error and started signalling it.
    ErrorDetected {
        /// Which of the five CAN error types.
        kind: CanErrorKind,
        /// Transmitter or receiver role.
        role: ErrorRole,
    },
    /// A node's fault-confinement state changed.
    ErrorStateChanged {
        /// The new state.
        state: ErrorState,
    },
    /// A node entered bus-off (timestamped at the end of its final error
    /// frame, matching the paper's bus-off-time definition).
    BusOff,
    /// A node completed bus-off recovery (128 × 11 recessive bits) and
    /// rejoined as error-active.
    Recovered,
}

/// A timestamped, node-attributed event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When the event occurred (bit time of the sample that triggered it).
    pub at: BitInstant,
    /// Which node it concerns.
    pub node: NodeId,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event.
    pub fn new(at: BitInstant, node: NodeId, kind: EventKind) -> Self {
        Event { at, node, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_time_and_node() {
        let e = Event::new(BitInstant::from_bits(42), 3, EventKind::BusOff);
        assert_eq!(e.at.bits(), 42);
        assert_eq!(e.node, 3);
        assert_eq!(e.kind, EventKind::BusOff);
    }

    #[test]
    fn event_kinds_compare() {
        assert_ne!(EventKind::BusOff, EventKind::Recovered);
        assert_eq!(
            EventKind::ArbitrationLost {
                id: CanId::from_raw(1)
            },
            EventKind::ArbitrationLost {
                id: CanId::from_raw(1)
            }
        );
    }
}

//! The discrete-event, bit-synchronous bus simulator.
//!
//! Every simulated nominal bit time, the [`Simulator`]:
//!
//! 1. collects each node's TX contribution,
//! 2. resolves the bus level by wired-AND,
//! 3. records the level (optional signal trace),
//! 4. delivers the sample to every node.
//!
//! All paper metrics derive from the resulting [`Event`] log and signal
//! trace.

use can_core::{BitDuration, BitInstant, BusSpeed, Level};
use can_obs::Recorder;

use crate::controller::StepOutput;
use crate::event::{Event, EventKind, NodeId};
use crate::fault::{FaultModel, FaultStack};
use crate::node::Node;

/// Width of the bus-utilization measurement window, in bit times. At the
/// end of every window the simulator records the window's busy percentage
/// into the `can_bus_utilization_percent` histogram (integer percent, so
/// snapshots stay deterministic).
pub const OBS_WINDOW_BITS: u64 = 1_000;

/// A per-bit recording of the bus level.
///
/// Two modes: *full* (the default — every bit since the start, index =
/// bit time) and *ring* (a fixed-capacity window of the most recent bits,
/// for soak runs where an unbounded trace would grow without limit).
#[derive(Debug, Clone, Default)]
pub struct SignalTrace {
    levels: Vec<Level>,
    /// `Some(cap)` makes the trace a ring over the last `cap` bits.
    capacity: Option<usize>,
    /// Ring mode: index of the oldest recorded level (= next write slot
    /// once the buffer is full).
    head: usize,
    /// Total bits ever recorded (≥ `len()` once a ring has wrapped).
    recorded: u64,
}

impl SignalTrace {
    /// A bounded trace retaining only the most recent `capacity` bits.
    pub fn ring(capacity: usize) -> Self {
        assert!(capacity > 0, "a ring trace needs a non-zero capacity");
        SignalTrace {
            levels: Vec::with_capacity(capacity),
            capacity: Some(capacity),
            head: 0,
            recorded: 0,
        }
    }

    fn push(&mut self, level: Level) {
        self.recorded += 1;
        match self.capacity {
            Some(cap) if self.levels.len() == cap => {
                self.levels[self.head] = level;
                self.head = (self.head + 1) % cap;
            }
            _ => self.levels.push(level),
        }
    }

    /// The raw stored levels. In full mode (and in ring mode before the
    /// first wrap-around) index = bit time; in a wrapped ring the storage
    /// is rotated — use [`SignalTrace::snapshot`] for chronological order.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The retained levels in chronological order (oldest first). In full
    /// mode this is simply a copy of [`SignalTrace::levels`].
    pub fn snapshot(&self) -> Vec<Level> {
        let mut out = Vec::with_capacity(self.levels.len());
        out.extend_from_slice(&self.levels[self.head..]);
        out.extend_from_slice(&self.levels[..self.head]);
        out
    }

    /// Number of retained bits (bounded by the ring capacity, if any).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Total bits ever recorded, including ones a ring has overwritten.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

/// The bit-level CAN bus simulator.
pub struct Simulator {
    speed: BusSpeed,
    nodes: Vec<Node>,
    now: BitInstant,
    events: Vec<Event>,
    log_events: bool,
    trace: Option<SignalTrace>,
    busy_bits: u64,
    faults: FaultStack,
    /// Recycled per-bit output buffer — one allocation for the whole run
    /// instead of one per node per bit.
    scratch: StepOutput,
    /// Metrics sink; disabled (a no-op) by default so the hot path pays a
    /// single branch.
    recorder: Recorder,
    /// Last TEC/REC values published to the recorder, per node — deltas
    /// and gauges are emitted only on change.
    obs_prev: Vec<(u16, u16)>,
    /// Busy bits inside the current [`OBS_WINDOW_BITS`] window.
    obs_window_busy: u32,
}

impl Simulator {
    /// Creates an empty simulator at the given bus speed.
    pub fn new(speed: BusSpeed) -> Self {
        Simulator {
            speed,
            nodes: Vec::new(),
            now: BitInstant::ZERO,
            events: Vec::new(),
            log_events: true,
            trace: None,
            busy_bits: 0,
            faults: FaultStack::new(),
            scratch: StepOutput::default(),
            recorder: Recorder::disabled(),
            obs_prev: Vec::new(),
            obs_window_busy: 0,
        }
    }

    /// Attaches a metrics recorder. The default [`Recorder::disabled`]
    /// makes every instrumentation site a no-op; an enabled recorder
    /// accumulates per-node TEC/REC, error counts by kind, arbitration
    /// losses, traffic counters and windowed bus utilization.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The attached recorder (disabled unless [`Simulator::set_recorder`]
    /// installed a live one).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Installs a single channel fault model (EMI-style bus
    /// disturbances), replacing any existing stack.
    pub fn set_fault_model(&mut self, fault: FaultModel) {
        self.faults = FaultStack::from(fault);
    }

    /// Installs a full channel fault stack, replacing any existing one.
    pub fn set_fault_stack(&mut self, faults: FaultStack) {
        self.faults = faults;
    }

    /// Appends a channel fault layer on top of the existing stack.
    pub fn add_fault_layer(&mut self, fault: FaultModel) {
        self.faults.push(fault);
    }

    /// Enables per-bit signal tracing (needed for Fig. 6-style timelines).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(SignalTrace::default());
        }
    }

    /// Enables bounded signal tracing: only the most recent `capacity`
    /// bits are retained (for soak runs, where a full trace would grow
    /// without limit). Replaces any existing trace.
    pub fn enable_trace_ring(&mut self, capacity: usize) {
        self.trace = Some(SignalTrace::ring(capacity));
    }

    /// Turns event logging on or off (on by default).
    ///
    /// With logging off, [`Simulator::step`] discards protocol events
    /// instead of appending them to the log — applications and agents
    /// still receive their callbacks, but [`Simulator::events`] stops
    /// growing. Pure-throughput measurements and long soak runs use this
    /// to keep the hot path free of log growth.
    pub fn set_event_logging(&mut self, enabled: bool) {
        self.log_events = enabled;
    }

    /// Adds a node; returns its [`NodeId`].
    pub fn add_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// The configured bus speed.
    pub fn speed(&self) -> BusSpeed {
        self.speed
    }

    /// Current simulated time.
    pub fn now(&self) -> BitInstant {
        self.now
    }

    /// The event log so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Drains the event log, returning the accumulated events.
    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Drains the event log into `out` (appending), keeping the log's
    /// allocation for reuse. Callers that poll every bit (e.g. the
    /// multi-attacker scan) use this to stay allocation-free while keeping
    /// memory flat over arbitrarily long runs.
    pub fn take_events_into(&mut self, out: &mut Vec<Event>) {
        out.append(&mut self.events);
    }

    /// The signal trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&SignalTrace> {
        self.trace.as_ref()
    }

    /// Access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Number of nodes on the bus.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of simulated bits during which the bus carried a frame or
    /// error condition (for windowed bus-load measurements).
    pub fn busy_bits(&self) -> u64 {
        self.busy_bits
    }

    /// Fraction of simulated bits during which the bus carried a frame or
    /// error condition — the observed *bus load*.
    pub fn observed_bus_load(&self) -> f64 {
        if self.now.bits() == 0 {
            0.0
        } else {
            self.busy_bits as f64 / self.now.bits() as f64
        }
    }

    /// Advances the simulation by one nominal bit time.
    pub fn step(&mut self) -> Level {
        // Hoisted once per bit: the disabled-recorder hot path must cost a
        // single branch, not one per instrumentation site.
        let obs = self.recorder.is_enabled();
        if obs && self.obs_prev.len() != self.nodes.len() {
            self.obs_prev.resize(self.nodes.len(), (0, 0));
            for (id, node) in self.nodes.iter().enumerate() {
                let counters = node.controller().counters();
                self.obs_prev[id] = (counters.tec(), counters.rec());
                self.recorder.set_gauge(
                    &format!("can_node_tec{{node=\"{id}\"}}"),
                    counters.tec().into(),
                );
                self.recorder.set_gauge(
                    &format!("can_node_rec{{node=\"{id}\"}}"),
                    counters.rec().into(),
                );
            }
        }

        for node in &mut self.nodes {
            node.prepare_bit(self.now);
        }
        let resolved = Level::wired_and(self.nodes.iter().map(Node::tx_level));
        let bus = self.faults.apply(resolved, self.now.bits());
        if let Some(trace) = &mut self.trace {
            trace.push(bus);
        }

        let mut busy = bus.is_dominant();
        for (id, node) in self.nodes.iter_mut().enumerate() {
            self.scratch.clear();
            node.sample_into(bus, self.now, &mut self.scratch);
            busy |= node.controller().is_busy();
            if obs {
                for kind in &self.scratch.events {
                    record_event(&self.recorder, id, kind);
                }
                let counters = node.controller().counters();
                let (tec, rec) = (counters.tec(), counters.rec());
                let (prev_tec, prev_rec) = self.obs_prev[id];
                if tec != prev_tec {
                    if tec > prev_tec {
                        self.recorder.add(
                            &format!("can_node_tec_raised_total{{node=\"{id}\"}}"),
                            u64::from(tec - prev_tec),
                        );
                    }
                    self.recorder
                        .set_gauge(&format!("can_node_tec{{node=\"{id}\"}}"), tec.into());
                }
                if rec != prev_rec {
                    if rec > prev_rec {
                        self.recorder.add(
                            &format!("can_node_rec_raised_total{{node=\"{id}\"}}"),
                            u64::from(rec - prev_rec),
                        );
                    }
                    self.recorder
                        .set_gauge(&format!("can_node_rec{{node=\"{id}\"}}"), rec.into());
                }
                self.obs_prev[id] = (tec, rec);
            }
            if self.log_events {
                for kind in self.scratch.events.drain(..) {
                    self.events.push(Event::new(self.now, id, kind));
                }
            }
        }
        if busy {
            self.busy_bits += 1;
        }
        if obs {
            self.recorder.add("can_bus_bits_total", 1);
            if busy {
                self.recorder.add("can_bus_busy_bits_total", 1);
                self.obs_window_busy += 1;
            }
            if (self.now.bits() + 1).is_multiple_of(OBS_WINDOW_BITS) {
                let percent = u64::from(self.obs_window_busy) * 100 / OBS_WINDOW_BITS;
                self.recorder.observe_with(
                    "can_bus_utilization_percent",
                    can_obs::PERCENT_BUCKETS,
                    percent,
                );
                self.obs_window_busy = 0;
            }
        }

        self.now += BitDuration::bits(1);
        bus
    }

    /// Runs for `bits` nominal bit times.
    pub fn run(&mut self, bits: u64) {
        for _ in 0..bits {
            self.step();
        }
    }

    /// Runs for the given number of simulated milliseconds at the bus
    /// speed.
    pub fn run_millis(&mut self, millis: f64) {
        self.run(self.speed.bits_in_millis(millis));
    }

    /// Runs until `predicate` returns `true` for a newly appended event, or
    /// until `max_bits` elapse. Returns the matching event index, if any.
    pub fn run_until<F>(&mut self, max_bits: u64, mut predicate: F) -> Option<usize>
    where
        F: FnMut(&Event) -> bool,
    {
        let mut checked = self.events.len();
        for _ in 0..max_bits {
            self.step();
            while checked < self.events.len() {
                if predicate(&self.events[checked]) {
                    return Some(checked);
                }
                checked += 1;
            }
        }
        None
    }
}

/// Maps one protocol event onto its metric counter. Only called with an
/// enabled recorder, so the `format!` cost never touches the metrics-off
/// hot path.
fn record_event(recorder: &Recorder, id: NodeId, kind: &EventKind) {
    use can_core::errors::CanErrorKind;

    use crate::event::ErrorRole;
    match kind {
        EventKind::TransmissionStarted { .. } => {
            recorder.inc(&format!("can_tx_started_total{{node=\"{id}\"}}"));
        }
        EventKind::TransmissionSucceeded { .. } => {
            recorder.inc(&format!("can_tx_success_total{{node=\"{id}\"}}"));
        }
        EventKind::FrameReceived { .. } => {
            recorder.inc(&format!("can_frames_received_total{{node=\"{id}\"}}"));
        }
        EventKind::ArbitrationLost { .. } => {
            recorder.inc(&format!("can_arbitration_lost_total{{node=\"{id}\"}}"));
        }
        EventKind::ErrorDetected { kind, role } => {
            let kind = match kind {
                CanErrorKind::Bit => "bit",
                CanErrorKind::Stuff => "stuff",
                CanErrorKind::Form => "form",
                CanErrorKind::Ack => "ack",
                CanErrorKind::Crc => "crc",
            };
            let role = match role {
                ErrorRole::Transmitter => "tx",
                ErrorRole::Receiver => "rx",
            };
            recorder.inc(&format!(
                "can_errors_total{{node=\"{id}\",kind=\"{kind}\",role=\"{role}\"}}"
            ));
        }
        EventKind::ErrorStateChanged { state } => {
            recorder.inc(&format!(
                "can_error_state_changes_total{{node=\"{id}\",state=\"{state}\"}}"
            ));
        }
        EventKind::BusOff => recorder.inc(&format!("can_bus_off_total{{node=\"{id}\"}}")),
        EventKind::Recovered => recorder.inc(&format!("can_recovered_total{{node=\"{id}\"}}")),
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("speed", &self.speed)
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use can_core::app::{PeriodicSender, SilentApplication};
    use can_core::{CanFrame, CanId};

    fn frame(id: u16, data: &[u8]) -> CanFrame {
        CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
    }

    #[test]
    fn idle_bus_stays_recessive() {
        let mut sim = Simulator::new(BusSpeed::K500);
        sim.add_node(Node::new("a", Box::new(SilentApplication)));
        sim.add_node(Node::new("b", Box::new(SilentApplication)));
        sim.enable_trace();
        sim.run(100);
        assert!(sim
            .trace()
            .unwrap()
            .levels()
            .iter()
            .all(|l| l.is_recessive()));
        assert_eq!(sim.observed_bus_load(), 0.0);
    }

    #[test]
    fn periodic_traffic_flows_end_to_end() {
        let mut sim = Simulator::new(BusSpeed::K500);
        let f = frame(0x0C4, &[1, 2, 3, 4, 5, 6, 7, 8]);
        sim.add_node(Node::new(
            "sender",
            Box::new(PeriodicSender::new(f, 500, 0)),
        ));
        sim.add_node(Node::new("receiver", Box::new(SilentApplication)));
        sim.run(5_000);
        let received = sim
            .events()
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::FrameReceived { frame } if *frame == f))
            .count();
        // 5000 bits / 500-bit period ≈ 10 transmissions (minus ramp-up).
        assert!((8..=10).contains(&received), "received {received}");
        assert!(sim.observed_bus_load() > 0.15);
        assert!(sim.observed_bus_load() < 0.35);
    }

    #[test]
    fn run_until_stops_at_matching_event() {
        let mut sim = Simulator::new(BusSpeed::K50);
        let f = frame(0x111, &[]);
        sim.add_node(Node::new(
            "sender",
            Box::new(PeriodicSender::new(f, 400, 0)),
        ));
        sim.add_node(Node::new("rx", Box::new(SilentApplication)));
        let hit = sim.run_until(10_000, |e| {
            matches!(e.kind, EventKind::TransmissionSucceeded { .. })
        });
        assert!(hit.is_some());
        assert!(sim.now().bits() < 300, "stopped shortly after the event");
    }

    #[test]
    fn two_senders_share_the_bus_without_errors() {
        let mut sim = Simulator::new(BusSpeed::K500);
        sim.add_node(Node::new(
            "hi",
            Box::new(PeriodicSender::new(frame(0x050, &[0xA; 8]), 300, 0)),
        ));
        sim.add_node(Node::new(
            "lo",
            Box::new(PeriodicSender::new(frame(0x350, &[0xB; 8]), 300, 0)),
        ));
        sim.add_node(Node::new("rx", Box::new(SilentApplication)));
        sim.run(30_000);
        assert!(
            !sim.events()
                .iter()
                .any(|e| matches!(e.kind, EventKind::ErrorDetected { .. })),
            "healthy arbitration must be error-free"
        );
        let successes = sim
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::TransmissionSucceeded { .. }))
            .count();
        assert!(successes >= 190, "both periodic streams flow: {successes}");
        for id in 0..3 {
            assert_eq!(sim.node(id).controller().counters().tec(), 0);
        }
    }

    #[test]
    fn trace_records_every_bit() {
        let mut sim = Simulator::new(BusSpeed::K125);
        sim.add_node(Node::new("n", Box::new(SilentApplication)));
        sim.enable_trace();
        sim.run(77);
        assert_eq!(sim.trace().unwrap().len(), 77);
        assert_eq!(sim.now().bits(), 77);
    }

    #[test]
    fn stuck_dominant_transmitter_jams_the_bus() {
        use crate::fault::TxFault;
        let mut sim = Simulator::new(BusSpeed::K500);
        sim.add_node(Node::new(
            "sender",
            Box::new(PeriodicSender::new(frame(0x100, &[1, 2]), 400, 0)),
        ));
        sim.add_node(
            Node::new("broken", Box::new(SilentApplication))
                .with_tx_fault(TxFault::stuck_dominant(1_000, 3_000)),
        );
        sim.enable_trace();
        sim.run(5_000);
        let levels = sim.trace().unwrap().levels();
        assert!(
            levels[1_000..3_000].iter().all(|l| l.is_dominant()),
            "the bus is jammed for the whole window"
        );
        // The healthy sender keeps succeeding once the jam clears.
        let after_jam = sim
            .events()
            .iter()
            .filter(|e| {
                e.at.bits() > 3_000 && matches!(e.kind, EventKind::TransmissionSucceeded { .. })
            })
            .count();
        assert!(after_jam >= 3, "recovered after the jam: {after_jam}");
    }

    #[test]
    fn crashed_node_falls_silent_then_rejoins_after_reset() {
        use crate::fault::TxFault;
        let mut sim = Simulator::new(BusSpeed::K500);
        let sender = sim.add_node(
            Node::new(
                "flaky",
                Box::new(PeriodicSender::new(frame(0x123, &[7]), 500, 0)),
            )
            .with_tx_fault(TxFault::crash_restart(2_000, 8_000)),
        );
        sim.add_node(Node::new("rx", Box::new(SilentApplication)));
        sim.run(14_000);

        let successes: Vec<u64> = sim
            .events()
            .iter()
            .filter(|e| {
                e.node == sender && matches!(e.kind, EventKind::TransmissionSucceeded { .. })
            })
            .map(|e| e.at.bits())
            .collect();
        assert!(
            successes.iter().any(|&t| t < 2_000),
            "transmits before the crash"
        );
        assert!(
            !successes.iter().any(|&t| (2_000..8_011).contains(&t)),
            "silent while down (plus re-integration)"
        );
        assert!(
            successes.iter().any(|&t| t > 8_011),
            "resumes after the restart"
        );
        assert_eq!(sim.node(sender).controller().counters().tec(), 0);
    }

    #[test]
    fn recorder_captures_traffic_and_utilization() {
        use can_obs::Recorder;
        let mut sim = Simulator::new(BusSpeed::K500);
        sim.add_node(Node::new(
            "sender",
            Box::new(PeriodicSender::new(frame(0x0C4, &[1, 2, 3, 4]), 500, 0)),
        ));
        sim.add_node(Node::new("receiver", Box::new(SilentApplication)));
        sim.set_recorder(Recorder::enabled());
        sim.run(5_000);
        let reg = sim.recorder().clone().into_registry();
        assert_eq!(reg.counter("can_bus_bits_total"), 5_000);
        assert!(reg.counter("can_tx_success_total{node=\"0\"}") >= 8);
        assert!(reg.counter("can_frames_received_total{node=\"1\"}") >= 8);
        assert_eq!(reg.gauge("can_node_tec{node=\"0\"}"), Some(0));
        assert_eq!(reg.gauge("can_node_rec{node=\"1\"}"), Some(0));
        let util = reg.histogram("can_bus_utilization_percent").unwrap();
        assert_eq!(util.count(), 5, "one observation per 1000-bit window");
        assert!(reg.counter("can_bus_busy_bits_total") > 0);
    }

    #[test]
    fn disabled_recorder_does_not_perturb_the_run() {
        use can_obs::Recorder;
        let run = |recorder: Option<Recorder>| {
            let mut sim = Simulator::new(BusSpeed::K500);
            sim.add_node(Node::new(
                "s",
                Box::new(PeriodicSender::new(frame(0x123, &[9; 8]), 400, 0)),
            ));
            sim.add_node(Node::new("r", Box::new(SilentApplication)));
            if let Some(rec) = recorder {
                sim.set_recorder(rec);
            }
            sim.run(10_000);
            sim.take_events()
        };
        let baseline = run(None);
        let with_disabled = run(Some(Recorder::disabled()));
        let with_enabled = run(Some(Recorder::enabled()));
        assert_eq!(baseline, with_disabled);
        assert_eq!(baseline, with_enabled, "metrics are observe-only");
    }

    #[test]
    fn run_millis_converts_via_speed() {
        let mut sim = Simulator::new(BusSpeed::K50);
        sim.run_millis(2.0);
        assert_eq!(sim.now().bits(), 100);
    }
}

//! The discrete-event, bit-synchronous bus simulator.
//!
//! Every simulated nominal bit time, the [`Simulator`]:
//!
//! 1. collects each node's TX contribution,
//! 2. resolves the bus level by wired-AND,
//! 3. records the level (optional signal trace),
//! 4. delivers the sample to every node.
//!
//! All paper metrics derive from the resulting [`Event`] log and signal
//! trace.

use can_core::{packed, BitDuration, BitInstant, BusSpeed, Level};
use can_obs::{Journal, Recorder};

use crate::controller::{integrating_word_cap, StepOutput, StretchRole};
use crate::event::{Event, EventKind, NodeId};
use crate::fault::{FaultModel, FaultStack};
use crate::node::Node;
use crate::parser::RxParser;
use crate::tap::FrameTap;
use crate::telemetry::{FallbackCause, KernelTelemetry};

/// Width of the bus-utilization measurement window, in bit times. At the
/// end of every window the simulator records the window's busy percentage
/// into the `can_bus_utilization_percent` histogram (integer percent, so
/// snapshots stay deterministic).
pub const OBS_WINDOW_BITS: u64 = 1_000;

/// A per-bit recording of the bus level.
///
/// Two modes: *full* (the default — every bit since the start, index =
/// bit time) and *ring* (a fixed-capacity window of the most recent bits,
/// for soak runs where an unbounded trace would grow without limit).
#[derive(Debug, Clone, Default)]
pub struct SignalTrace {
    levels: Vec<Level>,
    /// `Some(cap)` makes the trace a ring over the last `cap` bits.
    capacity: Option<usize>,
    /// Ring mode: index of the oldest recorded level (= next write slot
    /// once the buffer is full).
    head: usize,
    /// Total bits ever recorded (≥ `len()` once a ring has wrapped).
    recorded: u64,
}

impl SignalTrace {
    /// A bounded trace retaining only the most recent `capacity` bits.
    pub fn ring(capacity: usize) -> Self {
        assert!(capacity > 0, "a ring trace needs a non-zero capacity");
        SignalTrace {
            levels: Vec::with_capacity(capacity),
            capacity: Some(capacity),
            head: 0,
            recorded: 0,
        }
    }

    fn push(&mut self, level: Level) {
        self.recorded += 1;
        match self.capacity {
            Some(cap) if self.levels.len() == cap => {
                self.levels[self.head] = level;
                self.head = (self.head + 1) % cap;
            }
            _ => self.levels.push(level),
        }
    }

    /// Appends the low `count` bits of a packed dominant-mask word,
    /// byte-identical to `count` single pushes. The packed kernel uses
    /// this to record a whole stretch of mixed levels at once.
    fn push_word(&mut self, word: u64, count: u32) {
        for i in 0..count {
            self.push(packed::level_at(word, i));
        }
    }

    /// Appends `count` copies of `level` in closed form — byte-identical
    /// to `count` single pushes, but O(min(count, capacity)) for a ring.
    /// The fast-forward path uses this to backfill skipped idle gaps.
    pub fn push_run(&mut self, level: Level, count: u64) {
        self.recorded += count;
        let Some(cap) = self.capacity else {
            self.levels
                .extend(std::iter::repeat_n(level, count as usize));
            return;
        };
        // Fill up to capacity first (pre-wrap appends)...
        let fill = (count as usize).min(cap - self.levels.len());
        self.levels.extend(std::iter::repeat_n(level, fill));
        let mut rest = count - fill as u64;
        if rest == 0 {
            return;
        }
        // ...then rotate. A run of at least `cap` overwrites everything;
        // only the head position still depends on the exact length.
        if rest >= cap as u64 {
            self.levels.iter_mut().for_each(|slot| *slot = level);
            rest %= cap as u64;
        }
        for _ in 0..rest {
            self.levels[self.head] = level;
            self.head = (self.head + 1) % cap;
        }
    }

    /// The raw stored levels. In full mode (and in ring mode before the
    /// first wrap-around) index = bit time; in a wrapped ring the storage
    /// is rotated — use [`SignalTrace::snapshot`] for chronological order.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The retained levels in chronological order (oldest first). In full
    /// mode this is simply a copy of [`SignalTrace::levels`].
    pub fn snapshot(&self) -> Vec<Level> {
        let mut out = Vec::with_capacity(self.levels.len());
        out.extend_from_slice(&self.levels[self.head..]);
        out.extend_from_slice(&self.levels[..self.head]);
        out
    }

    /// Number of retained bits (bounded by the ring capacity, if any).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Total bits ever recorded, including ones a ring has overwritten.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

/// Per-node metric keys, interned once at [`Simulator::add_node`] time so
/// the per-bit instrumentation path never calls `format!`.
///
/// Only the keys that can fire every bit (TEC/REC gauges and deltas) or
/// every frame are pre-built; rare, label-rich events (`ErrorDetected`,
/// `ErrorStateChanged`) keep their lazy `format!` in [`record_event`].
#[derive(Debug, Clone)]
struct NodeMetricKeys {
    tec_gauge: String,
    rec_gauge: String,
    tec_raised: String,
    rec_raised: String,
    tx_started: String,
    tx_success: String,
    frames_received: String,
    arbitration_lost: String,
    bus_off: String,
    recovered: String,
}

impl NodeMetricKeys {
    fn new(id: NodeId) -> Self {
        NodeMetricKeys {
            tec_gauge: format!("can_node_tec{{node=\"{id}\"}}"),
            rec_gauge: format!("can_node_rec{{node=\"{id}\"}}"),
            tec_raised: format!("can_node_tec_raised_total{{node=\"{id}\"}}"),
            rec_raised: format!("can_node_rec_raised_total{{node=\"{id}\"}}"),
            tx_started: format!("can_tx_started_total{{node=\"{id}\"}}"),
            tx_success: format!("can_tx_success_total{{node=\"{id}\"}}"),
            frames_received: format!("can_frames_received_total{{node=\"{id}\"}}"),
            arbitration_lost: format!("can_arbitration_lost_total{{node=\"{id}\"}}"),
            bus_off: format!("can_bus_off_total{{node=\"{id}\"}}"),
            recovered: format!("can_recovered_total{{node=\"{id}\"}}"),
        }
    }
}

/// The bit-level CAN bus simulator.
pub struct Simulator {
    speed: BusSpeed,
    nodes: Vec<Node>,
    now: BitInstant,
    events: Vec<Event>,
    log_events: bool,
    trace: Option<SignalTrace>,
    busy_bits: u64,
    faults: FaultStack,
    /// Recycled per-bit output buffer — one allocation for the whole run
    /// instead of one per node per bit.
    scratch: StepOutput,
    /// Metrics sink; disabled (a no-op) by default so the hot path pays a
    /// single branch.
    recorder: Recorder,
    /// Causal event journal; disabled (a no-op) by default. Unlike the
    /// recorder's registry, journal content is identical across the three
    /// kernels only after its canonical export sort (see `can_obs::journal`).
    journal: Journal,
    /// Always-on kernel self-telemetry: how the engines spent their bits.
    /// Deliberately outside the registry — it differs per `SimMode` and
    /// must not leak into differential fingerprints.
    telemetry: KernelTelemetry,
    /// Last TEC/REC values published to the recorder, per node — deltas
    /// and gauges are emitted only on change.
    obs_prev: Vec<(u16, u16)>,
    /// Busy bits inside the current [`OBS_WINDOW_BITS`] window.
    obs_window_busy: u32,
    /// Pre-interned metric keys, one entry per node.
    metric_keys: Vec<NodeMetricKeys>,
    /// Bus-bit counter deltas accumulated since the last flush. The hot
    /// loop increments these plain fields; [`Simulator::flush_obs_counters`]
    /// publishes them to the recorder at every public API exit.
    pend_bits: u64,
    /// Busy-bit counter deltas accumulated since the last flush.
    pend_busy_bits: u64,
    /// Arena for the packed kernel: per-stretch node roles (reused).
    packed_roles: Vec<StretchRole>,
    /// Arena: per-node scratch parsers for receiver dry-runs (reused).
    rx_scratch: Vec<RxParser>,
    /// Arena: per-node (requested, consumed) bits of the latest dry-run.
    rx_dry: Vec<(u32, u32)>,
    /// Passive frame observers (see [`crate::tap::FrameTap`]): fed once
    /// per completed frame from the lockstep bit path.
    taps: Vec<Box<dyn FrameTap>>,
}

impl Simulator {
    /// Creates an empty simulator at the given bus speed.
    pub fn new(speed: BusSpeed) -> Self {
        Simulator {
            speed,
            nodes: Vec::new(),
            now: BitInstant::ZERO,
            events: Vec::new(),
            log_events: true,
            trace: None,
            busy_bits: 0,
            faults: FaultStack::new(),
            scratch: StepOutput::default(),
            recorder: Recorder::disabled(),
            journal: Journal::disabled(),
            telemetry: KernelTelemetry::default(),
            obs_prev: Vec::new(),
            obs_window_busy: 0,
            metric_keys: Vec::new(),
            pend_bits: 0,
            pend_busy_bits: 0,
            packed_roles: Vec::new(),
            rx_scratch: Vec::new(),
            rx_dry: Vec::new(),
            taps: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Internal installers — the configuration surface used by
    // [`crate::builder::SimBuilder`], which is the only way to configure
    // a simulator.
    // ------------------------------------------------------------------

    pub(crate) fn install_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    pub(crate) fn install_journal(&mut self, journal: Journal) {
        self.journal = journal;
    }

    pub(crate) fn install_fault_stack(&mut self, faults: FaultStack) {
        self.faults = faults;
    }

    pub(crate) fn push_fault_layer(&mut self, fault: FaultModel) {
        self.faults.push(fault);
    }

    pub(crate) fn install_trace(&mut self, trace: SignalTrace) {
        self.trace = Some(trace);
    }

    pub(crate) fn install_event_logging(&mut self, enabled: bool) {
        self.log_events = enabled;
    }

    pub(crate) fn install_tap(&mut self, tap: Box<dyn FrameTap>) {
        self.taps.push(tap);
    }

    /// Number of attached passive frame taps.
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    /// The attached recorder (disabled unless one was installed via
    /// [`crate::builder::SimBuilder::recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The attached causal journal (disabled unless one was installed via
    /// [`crate::builder::SimBuilder::journal`]).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The kernel self-telemetry accumulated so far (always collected).
    pub fn kernel_telemetry(&self) -> &KernelTelemetry {
        &self.telemetry
    }

    /// Adds a node; returns its [`NodeId`].
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(node);
        self.metric_keys.push(NodeMetricKeys::new(id));
        id
    }

    /// The configured bus speed.
    pub fn speed(&self) -> BusSpeed {
        self.speed
    }

    /// Current simulated time.
    pub fn now(&self) -> BitInstant {
        self.now
    }

    /// The event log so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Drains the event log, returning the accumulated events.
    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Drains the event log into `out` (appending), keeping the log's
    /// allocation for reuse. Callers that poll every bit (e.g. the
    /// multi-attacker scan) use this to stay allocation-free while keeping
    /// memory flat over arbitrarily long runs.
    pub fn take_events_into(&mut self, out: &mut Vec<Event>) {
        out.append(&mut self.events);
    }

    /// The signal trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&SignalTrace> {
        self.trace.as_ref()
    }

    /// Access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Number of nodes on the bus.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of simulated bits during which the bus carried a frame or
    /// error condition (for windowed bus-load measurements).
    pub fn busy_bits(&self) -> u64 {
        self.busy_bits
    }

    /// Fraction of simulated bits during which the bus carried a frame or
    /// error condition — the observed *bus load*.
    pub fn observed_bus_load(&self) -> f64 {
        if self.now.bits() == 0 {
            0.0
        } else {
            self.busy_bits as f64 / self.now.bits() as f64
        }
    }

    /// Publishes the initial TEC/REC gauges once a live recorder sees the
    /// current node set. Shared by the lockstep and fast-forward paths so
    /// the metrics registry's insertion order — and therefore its snapshot
    /// bytes — never depends on which path ran first.
    fn ensure_obs_init(&mut self) {
        if self.obs_prev.len() == self.nodes.len() {
            return;
        }
        self.obs_prev.resize(self.nodes.len(), (0, 0));
        for (id, node) in self.nodes.iter().enumerate() {
            let counters = node.controller().counters();
            self.obs_prev[id] = (counters.tec(), counters.rec());
            let keys = &self.metric_keys[id];
            self.recorder
                .set_gauge(&keys.tec_gauge, counters.tec().into());
            self.recorder
                .set_gauge(&keys.rec_gauge, counters.rec().into());
        }
    }

    /// Publishes the bus-bit counter deltas accumulated by the hot loop.
    ///
    /// Every public stepping API flushes on exit, so externally the
    /// counters are always current; internally the loop touches only plain
    /// fields.
    fn flush_obs_counters(&mut self) {
        if self.pend_bits > 0 {
            self.recorder.add("can_bus_bits_total", self.pend_bits);
            self.pend_bits = 0;
        }
        if self.pend_busy_bits > 0 {
            self.recorder
                .add("can_bus_busy_bits_total", self.pend_busy_bits);
            self.pend_busy_bits = 0;
        }
    }

    /// Advances the simulation by one nominal bit time.
    pub fn step(&mut self) -> Level {
        // Hoisted once per bit: the disabled-recorder hot path must cost a
        // single branch, not one per instrumentation site.
        let obs = self.recorder.is_enabled();
        if obs {
            self.ensure_obs_init();
        }
        let bus = self.step_inner(obs);
        if obs {
            self.flush_obs_counters();
        }
        bus
    }

    /// One lockstep bit, without the per-call recorder init/flush — the
    /// run-entry points hoist those out of the loop (`obs` is
    /// `recorder.is_enabled()`, evaluated once per run).
    fn step_inner(&mut self, obs: bool) -> Level {
        self.telemetry.count_lockstep_bit();
        let jrn = self.journal.is_enabled();
        for (id, node) in self.nodes.iter_mut().enumerate() {
            if node.prepare_bit(self.now) && jrn {
                // A crash restart flushed the mailboxes: any open causal
                // chain is void, the next frame is genuinely new traffic.
                self.journal.close_chain(id as u32);
            }
        }
        let resolved = Level::wired_and(self.nodes.iter().map(Node::tx_level));
        let bus = self.faults.apply(resolved, self.now.bits());
        if let Some(trace) = &mut self.trace {
            trace.push(bus);
        }

        let mut busy = bus.is_dominant();
        let mut tap_frame: Option<can_core::CanFrame> = None;
        for (id, node) in self.nodes.iter_mut().enumerate() {
            self.scratch.clear();
            node.sample_into(bus, self.now, &mut self.scratch);
            busy |= node.controller().is_busy();
            if !self.taps.is_empty() && tap_frame.is_none() {
                // At most one frame occupies a single bus, so at most one
                // frame completes per bit; the transmitter's copy (lowest
                // node id) and every receiver's copy are the same frame.
                for kind in &self.scratch.events {
                    if let EventKind::TransmissionSucceeded { frame }
                    | EventKind::FrameReceived { frame } = kind
                    {
                        tap_frame = Some(*frame);
                        break;
                    }
                }
            }
            if obs {
                let keys = &self.metric_keys[id];
                for kind in &self.scratch.events {
                    record_event(&self.recorder, keys, id, kind);
                }
                let counters = node.controller().counters();
                let (tec, rec) = (counters.tec(), counters.rec());
                let (prev_tec, prev_rec) = self.obs_prev[id];
                if tec != prev_tec {
                    if tec > prev_tec {
                        self.recorder
                            .add(&keys.tec_raised, u64::from(tec - prev_tec));
                    }
                    self.recorder.set_gauge(&keys.tec_gauge, tec.into());
                }
                if rec != prev_rec {
                    if rec > prev_rec {
                        self.recorder
                            .add(&keys.rec_raised, u64::from(rec - prev_rec));
                    }
                    self.recorder.set_gauge(&keys.rec_gauge, rec.into());
                }
                self.obs_prev[id] = (tec, rec);
            }
            if jrn {
                for kind in &self.scratch.events {
                    journal_event(&self.journal, self.now.bits(), id as u32, kind);
                }
            }
            if self.log_events {
                for kind in self.scratch.events.drain(..) {
                    self.events.push(Event::new(self.now, id, kind));
                }
            }
        }
        if let Some(frame) = tap_frame {
            let at = self.now;
            for tap in &mut self.taps {
                tap.on_frame(&frame, at);
            }
        }
        if busy {
            self.busy_bits += 1;
        }
        if obs {
            self.pend_bits += 1;
            if busy {
                self.pend_busy_bits += 1;
                self.obs_window_busy += 1;
            }
            if (self.now.bits() + 1).is_multiple_of(OBS_WINDOW_BITS) {
                let percent = u64::from(self.obs_window_busy) * 100 / OBS_WINDOW_BITS;
                self.recorder.observe_with(
                    "can_bus_utilization_percent",
                    can_obs::PERCENT_BUCKETS,
                    percent,
                );
                self.obs_window_busy = 0;
            }
        }

        self.now += BitDuration::bits(1);
        bus
    }

    /// Runs for `bits` nominal bit times.
    pub fn run(&mut self, bits: u64) {
        let obs = self.recorder.is_enabled();
        if obs {
            self.ensure_obs_init();
        }
        for _ in 0..bits {
            self.step_inner(obs);
        }
        if obs {
            self.flush_obs_counters();
        }
    }

    /// Runs for the given number of simulated milliseconds at the bus
    /// speed.
    pub fn run_millis(&mut self, millis: f64) {
        self.run(self.speed.bits_in_millis(millis));
    }

    /// The number of bits (at most `max_bits`) that can be skipped in
    /// closed form from the current instant, or `None` when some component
    /// needs the current bit processed normally.
    ///
    /// The bus can be fast-forwarded over `[now, now + gap)` when every
    /// horizon source — the channel fault stack, every node (its TX
    /// fault, controller, application and bit agent, see
    /// [`Node::next_activity`]) and every passive frame tap
    /// ([`FrameTap::next_activity`]) — declares its next activity strictly after
    /// `now`. Quiescence implies the bus stays recessive for the whole gap:
    /// every skippable controller state drives recessive, and anything that
    /// could drive dominant reports `Some(now)`.
    fn idle_gap(&self, max_bits: u64) -> Option<u64> {
        let now = self.now.bits();
        let mut horizon = u64::MAX;
        let mut quiet = |t: Option<u64>| match t {
            Some(t) if t <= now => false,
            Some(t) => {
                horizon = horizon.min(t);
                true
            }
            None => true,
        };
        if !quiet(self.faults.next_activity(now)) {
            return None;
        }
        for node in &self.nodes {
            if !quiet(node.next_activity(self.now).map(BitInstant::bits)) {
                return None;
            }
        }
        for tap in &self.taps {
            if !quiet(tap.next_activity(self.now).map(BitInstant::bits)) {
                return None;
            }
        }
        let gap = (horizon - now).min(max_bits);
        (gap > 0).then_some(gap)
    }

    /// Fast-forwards over `gap` known-idle bits, keeping every piece of
    /// idle-dependent state — controller integration/suspend/recovery
    /// counters, agent interframe counters, signal trace, busy accounting
    /// and windowed utilization metrics — byte-identical to `gap` calls of
    /// [`Simulator::step`] over a recessive bus.
    fn skip_gap(&mut self, gap: u64, obs: bool) {
        self.telemetry.count_skip(gap);
        if let Some(trace) = &mut self.trace {
            trace.push_run(Level::Recessive, gap);
        }
        for node in &mut self.nodes {
            node.advance_idle(gap, self.now);
        }
        // An idle bus contributes no busy bits, so `busy_bits` and
        // `obs_window_busy` are untouched; only the window *boundaries*
        // inside the gap must still fire their utilization observations.
        if obs {
            self.pend_bits += gap;
            let start = self.now.bits();
            // A window observation fires at bit `b` when
            // `(b + 1) % OBS_WINDOW_BITS == 0`. The first boundary in the
            // gap flushes whatever the lockstep path had accumulated; any
            // further boundaries cover all-idle windows and record zero.
            let first_flush = (start + 1).next_multiple_of(OBS_WINDOW_BITS) - 1;
            if first_flush < start + gap {
                let windows = (start + gap - 1 - first_flush) / OBS_WINDOW_BITS + 1;
                let percent = u64::from(self.obs_window_busy) * 100 / OBS_WINDOW_BITS;
                self.recorder.observe_with(
                    "can_bus_utilization_percent",
                    can_obs::PERCENT_BUCKETS,
                    percent,
                );
                for _ in 1..windows {
                    self.recorder.observe_with(
                        "can_bus_utilization_percent",
                        can_obs::PERCENT_BUCKETS,
                        0,
                    );
                }
                self.obs_window_busy = 0;
            }
        }
        self.now += BitDuration::bits(gap);
    }

    /// Advances the simulation by one *quantum*: a closed-form skip over an
    /// idle gap when the whole bus is quiescent, or a single
    /// [`Simulator::step`] otherwise. Returns the number of bits advanced
    /// (never more than `max_bits`; `0` only when `max_bits` is `0`).
    pub fn advance(&mut self, max_bits: u64) -> u64 {
        let obs = self.recorder.is_enabled();
        if obs {
            self.ensure_obs_init();
        }
        let advanced = self.advance_inner(max_bits, obs);
        if obs {
            self.flush_obs_counters();
        }
        advanced
    }

    fn advance_inner(&mut self, max_bits: u64, obs: bool) -> u64 {
        if max_bits == 0 {
            return 0;
        }
        match self.idle_gap(max_bits) {
            Some(gap) => {
                self.skip_gap(gap, obs);
                gap
            }
            None => {
                self.step_inner(obs);
                1
            }
        }
    }

    /// Runs for `bits` nominal bit times with idle fast-forward: behaves
    /// exactly like [`Simulator::run`] — same events, trace, metrics and
    /// final state — but skips quiescent stretches in closed form instead
    /// of simulating them bit by bit.
    pub fn run_fast(&mut self, bits: u64) {
        let obs = self.recorder.is_enabled();
        if obs {
            self.ensure_obs_init();
        }
        let end = self.now.bits() + bits;
        while self.now.bits() < end {
            self.advance_inner(end - self.now.bits(), obs);
        }
        if obs {
            self.flush_obs_counters();
        }
    }

    /// [`Simulator::run_millis`] with idle fast-forward.
    pub fn run_millis_fast(&mut self, millis: f64) {
        self.run_fast(self.speed.bits_in_millis(millis));
    }

    /// Advances by one quantum of the packed kernel: an idle-gap skip, a
    /// word-packed stretch of up to 64 bits, or a single lockstep bit —
    /// whichever applies first. Returns the number of bits advanced (`0`
    /// only when `max_bits` is `0`).
    pub fn advance_packed(&mut self, max_bits: u64) -> u64 {
        let obs = self.recorder.is_enabled();
        if obs {
            self.ensure_obs_init();
        }
        let advanced = self.advance_packed_inner(max_bits, obs);
        if obs {
            self.flush_obs_counters();
        }
        advanced
    }

    fn advance_packed_inner(&mut self, max_bits: u64, obs: bool) -> u64 {
        if max_bits == 0 {
            return 0;
        }
        if let Some(gap) = self.idle_gap(max_bits) {
            self.skip_gap(gap, obs);
            return gap;
        }
        match self.packed_stretch(max_bits, obs) {
            Some(n) => n,
            None => {
                self.step_inner(obs);
                1
            }
        }
    }

    /// Runs for `bits` nominal bit times with the packed bus kernel:
    /// behaves exactly like [`Simulator::run`] — same events, trace,
    /// metrics and final state — but resolves provably event-free
    /// stretches of the wired-AND word-at-a-time (up to 64 bits per
    /// quantum) and skips fully idle gaps in closed form. Every bit at
    /// which a protocol event, fault window, agent drive or application
    /// poll could occur still takes the lockstep path.
    pub fn run_packed(&mut self, bits: u64) {
        let obs = self.recorder.is_enabled();
        if obs {
            self.ensure_obs_init();
        }
        let end = self.now.bits() + bits;
        while self.now.bits() < end {
            self.advance_packed_inner(end - self.now.bits(), obs);
        }
        if obs {
            self.flush_obs_counters();
        }
    }

    /// [`Simulator::run_millis`] with the packed bus kernel.
    pub fn run_millis_packed(&mut self, millis: f64) {
        self.run_packed(self.speed.bits_in_millis(millis));
    }

    /// Attempts one packed stretch: negotiates a per-node event-free
    /// window (DESIGN.md §11), resolves the wired-AND as a dominant-mask
    /// OR, shortens the window to the first bit any node must process in
    /// lockstep, and commits the surviving prefix in bulk. Returns `None`
    /// when the current bit needs the lockstep path.
    fn packed_stretch(&mut self, max_bits: u64, obs: bool) -> Option<u64> {
        let now_bits = self.now.bits();
        let mut cap = max_bits.min(u64::from(packed::WORD_BITS));
        match self.faults.next_activity(now_bits) {
            Some(t) if t <= now_bits => {
                self.telemetry.count_fallback(FallbackCause::FaultStack);
                return None;
            }
            Some(t) => cap = cap.min(t - now_bits),
            None => {}
        }
        self.packed_roles.clear();
        for node in &self.nodes {
            match node.stretch_plan(self.now, &mut cap) {
                Ok(role) => self.packed_roles.push(role),
                Err(cause) => {
                    self.telemetry.count_fallback(cause);
                    return None;
                }
            }
        }
        if cap < 2 {
            // A one-bit "stretch" costs more than the lockstep bit it saves.
            self.telemetry.count_fallback(FallbackCause::ShortCap);
            return None;
        }

        // Wired-AND over the stretch: dominant-mask OR of the transmitters.
        let mut bus = 0u64;
        for role in &self.packed_roles {
            if let StretchRole::Transmit { word } = role {
                bus |= *word;
            }
        }
        // Post-AND shortening: each condition ends the stretch at the
        // first bit the lockstep path must process. All caps are
        // "first offset of X", so they are prefix-stable and one pass
        // suffices even as `n` shrinks.
        let mut n = cap as u32;
        for role in &self.packed_roles {
            match role {
                StretchRole::Transmit { word } => {
                    // First disagreement between sent and resolved levels:
                    // arbitration loss, dominant overwrite or bit error.
                    if let Some(d) = packed::first_mismatch(*word, bus, n) {
                        n = d;
                    }
                }
                StretchRole::Passive => {
                    // An idle-class node joins the frame at the first
                    // dominant bit (SOF from its point of view).
                    if let Some(d) = packed::first_dominant(bus, n) {
                        n = d;
                    }
                }
                StretchRole::Integrating { recessive_run } => {
                    n = integrating_word_cap(*recessive_run, bus, n);
                }
                StretchRole::Receive | StretchRole::BusOff | StretchRole::Down => {}
            }
        }
        if n == 0 {
            self.telemetry.count_fallback(FallbackCause::PostAndShorten);
            return None;
        }
        // Receiver dry-runs: stop before the first parser event
        // (ACK-slot announcement, completion, fault).
        if self.rx_scratch.len() < self.nodes.len() {
            self.rx_scratch.resize_with(self.nodes.len(), RxParser::new);
            self.rx_dry.resize(self.nodes.len(), (0, 0));
        }
        for (i, role) in self.packed_roles.iter().enumerate() {
            if *role == StretchRole::Receive {
                let req = n;
                let consumed = self.nodes[i].controller().receive_stretch_cap(
                    bus,
                    req,
                    &mut self.rx_scratch[i],
                );
                self.rx_dry[i] = (req, consumed);
                n = n.min(consumed);
            }
        }
        if n == 0 {
            self.telemetry.count_fallback(FallbackCause::ReceiverDryRun);
            return None;
        }
        self.telemetry
            .count_stretch(u64::from(n), &self.packed_roles);

        // Commit: every node advances `n` bits in its negotiated role.
        // A stretch with any transmitter or receiver is busy for all `n`
        // bits (those states cannot end inside it); one with neither has
        // an all-recessive, all-idle bus and is busy for none.
        let busy = self
            .packed_roles
            .iter()
            .any(|role| matches!(role, StretchRole::Transmit { .. } | StretchRole::Receive));
        let n64 = u64::from(n);
        if let Some(trace) = &mut self.trace {
            trace.push_word(bus, n);
        }
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let (req, consumed) = self.rx_dry[i];
            // The dry run can be installed as-is only if it covered
            // exactly the final stretch, event-free.
            let rx_swap = consumed == req && req == n;
            node.commit_stretch(
                self.packed_roles[i],
                bus,
                n,
                self.now,
                &mut self.rx_scratch[i],
                rx_swap,
            );
        }
        if busy {
            self.busy_bits += n64;
        }
        if obs {
            self.pend_bits += n64;
            if busy {
                self.pend_busy_bits += n64;
            }
            // At most one utilization-window boundary fits in a ≤64-bit
            // stretch; the busy state is uniform across it.
            let start = self.now.bits();
            let first_flush = (start + 1).next_multiple_of(OBS_WINDOW_BITS) - 1;
            if first_flush < start + n64 {
                let before = (first_flush - start + 1) as u32;
                debug_assert!(u64::from(n - before) < OBS_WINDOW_BITS);
                if busy {
                    self.obs_window_busy += before;
                }
                let percent = u64::from(self.obs_window_busy) * 100 / OBS_WINDOW_BITS;
                self.recorder.observe_with(
                    "can_bus_utilization_percent",
                    can_obs::PERCENT_BUCKETS,
                    percent,
                );
                self.obs_window_busy = if busy { n - before } else { 0 };
            } else if busy {
                self.obs_window_busy += n;
            }
        }
        self.now += BitDuration::bits(n64);
        Some(n64)
    }

    /// Runs until `predicate` returns `true` for a newly appended event, or
    /// until `max_bits` elapse. Returns the matching event index, if any.
    pub fn run_until<F>(&mut self, max_bits: u64, mut predicate: F) -> Option<usize>
    where
        F: FnMut(&Event) -> bool,
    {
        let mut checked = self.events.len();
        for _ in 0..max_bits {
            self.step();
            while checked < self.events.len() {
                if predicate(&self.events[checked]) {
                    return Some(checked);
                }
                checked += 1;
            }
        }
        None
    }
}

/// Maps one protocol event onto the causal journal. Only called with an
/// enabled journal. Frame lifecycle events open/close causal chains
/// (retransmissions inherit the destroyed attempt's `chain_id`); receiver
/// errors and state changes are stamped with the provoking frame's ids.
/// `FrameReceived` is deliberately skipped — the transmitter's
/// [`can_obs::JK_FRAME_ACK`] already marks delivery, and one event per
/// receiver per frame would be pure noise.
fn journal_event(journal: &Journal, at: u64, node: u32, kind: &EventKind) {
    use can_obs::{
        JK_ARB_LOST, JK_BUS_OFF, JK_ERROR_STATE, JK_FRAME_ACK, JK_FRAME_ERROR, JK_RECOVERED,
        JK_RX_ERROR,
    };

    use crate::event::ErrorRole;
    match kind {
        EventKind::TransmissionStarted { id } => {
            journal.begin_frame(at, node, &format!("id=0x{:03X}", id.raw()));
        }
        EventKind::ArbitrationLost { id } => {
            journal.end_frame(
                at,
                node,
                JK_ARB_LOST,
                &format!("id=0x{:03X}", id.raw()),
                true,
            );
        }
        EventKind::TransmissionSucceeded { frame } => {
            journal.end_frame(
                at,
                node,
                JK_FRAME_ACK,
                &format!("id=0x{:03X}", frame.id().raw()),
                false,
            );
        }
        EventKind::ErrorDetected { kind, role } => {
            let kind = error_kind_label(*kind);
            match role {
                ErrorRole::Transmitter => {
                    // Offset into the destroyed frame, in destuffed-stream
                    // bit times since its SOF.
                    let off = journal.node_frame_offset(at, node);
                    journal.end_frame(
                        at,
                        node,
                        JK_FRAME_ERROR,
                        &format!("kind={kind} off={off}"),
                        true,
                    );
                }
                ErrorRole::Receiver => {
                    let off = journal.bus_frame_offset(at);
                    journal.event(at, node, JK_RX_ERROR, &format!("kind={kind} off={off}"));
                }
            }
        }
        EventKind::ErrorStateChanged { state } => {
            journal.node_event(at, node, JK_ERROR_STATE, &format!("state={state}"));
        }
        EventKind::BusOff => journal.node_event(at, node, JK_BUS_OFF, ""),
        EventKind::Recovered => journal.node_event(at, node, JK_RECOVERED, ""),
        EventKind::FrameReceived { .. } => {}
    }
}

fn error_kind_label(kind: can_core::errors::CanErrorKind) -> &'static str {
    use can_core::errors::CanErrorKind;
    match kind {
        CanErrorKind::Bit => "bit",
        CanErrorKind::Stuff => "stuff",
        CanErrorKind::Form => "form",
        CanErrorKind::Ack => "ack",
        CanErrorKind::Crc => "crc",
    }
}

/// Maps one protocol event onto its metric counter. Only called with an
/// enabled recorder; the per-frame keys come pre-interned from
/// [`NodeMetricKeys`], while the rare label-rich error events keep a lazy
/// `format!`.
fn record_event(recorder: &Recorder, keys: &NodeMetricKeys, id: NodeId, kind: &EventKind) {
    use crate::event::ErrorRole;
    match kind {
        EventKind::TransmissionStarted { .. } => {
            recorder.inc(&keys.tx_started);
        }
        EventKind::TransmissionSucceeded { .. } => {
            recorder.inc(&keys.tx_success);
        }
        EventKind::FrameReceived { .. } => {
            recorder.inc(&keys.frames_received);
        }
        EventKind::ArbitrationLost { .. } => {
            recorder.inc(&keys.arbitration_lost);
        }
        EventKind::ErrorDetected { kind, role } => {
            let kind = error_kind_label(*kind);
            let role = match role {
                ErrorRole::Transmitter => "tx",
                ErrorRole::Receiver => "rx",
            };
            recorder.inc(&format!(
                "can_errors_total{{node=\"{id}\",kind=\"{kind}\",role=\"{role}\"}}"
            ));
        }
        EventKind::ErrorStateChanged { state } => {
            recorder.inc(&format!(
                "can_error_state_changes_total{{node=\"{id}\",state=\"{state}\"}}"
            ));
        }
        EventKind::BusOff => recorder.inc(&keys.bus_off),
        EventKind::Recovered => recorder.inc(&keys.recovered),
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("speed", &self.speed)
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use can_core::app::{PeriodicSender, SilentApplication};
    use can_core::{CanFrame, CanId};

    fn frame(id: u16, data: &[u8]) -> CanFrame {
        CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
    }

    #[test]
    fn idle_bus_stays_recessive() {
        let mut sim = Simulator::new(BusSpeed::K500);
        sim.add_node(Node::new("a", Box::new(SilentApplication)));
        sim.add_node(Node::new("b", Box::new(SilentApplication)));
        sim.install_trace(SignalTrace::default());
        sim.run(100);
        assert!(sim
            .trace()
            .unwrap()
            .levels()
            .iter()
            .all(|l| l.is_recessive()));
        assert_eq!(sim.observed_bus_load(), 0.0);
    }

    #[test]
    fn periodic_traffic_flows_end_to_end() {
        let mut sim = Simulator::new(BusSpeed::K500);
        let f = frame(0x0C4, &[1, 2, 3, 4, 5, 6, 7, 8]);
        sim.add_node(Node::new(
            "sender",
            Box::new(PeriodicSender::new(f, 500, 0)),
        ));
        sim.add_node(Node::new("receiver", Box::new(SilentApplication)));
        sim.run(5_000);
        let received = sim
            .events()
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::FrameReceived { frame } if *frame == f))
            .count();
        // 5000 bits / 500-bit period ≈ 10 transmissions (minus ramp-up).
        assert!((8..=10).contains(&received), "received {received}");
        assert!(sim.observed_bus_load() > 0.15);
        assert!(sim.observed_bus_load() < 0.35);
    }

    #[test]
    fn run_until_stops_at_matching_event() {
        let mut sim = Simulator::new(BusSpeed::K50);
        let f = frame(0x111, &[]);
        sim.add_node(Node::new(
            "sender",
            Box::new(PeriodicSender::new(f, 400, 0)),
        ));
        sim.add_node(Node::new("rx", Box::new(SilentApplication)));
        let hit = sim.run_until(10_000, |e| {
            matches!(e.kind, EventKind::TransmissionSucceeded { .. })
        });
        assert!(hit.is_some());
        assert!(sim.now().bits() < 300, "stopped shortly after the event");
    }

    #[test]
    fn two_senders_share_the_bus_without_errors() {
        let mut sim = Simulator::new(BusSpeed::K500);
        sim.add_node(Node::new(
            "hi",
            Box::new(PeriodicSender::new(frame(0x050, &[0xA; 8]), 300, 0)),
        ));
        sim.add_node(Node::new(
            "lo",
            Box::new(PeriodicSender::new(frame(0x350, &[0xB; 8]), 300, 0)),
        ));
        sim.add_node(Node::new("rx", Box::new(SilentApplication)));
        sim.run(30_000);
        assert!(
            !sim.events()
                .iter()
                .any(|e| matches!(e.kind, EventKind::ErrorDetected { .. })),
            "healthy arbitration must be error-free"
        );
        let successes = sim
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::TransmissionSucceeded { .. }))
            .count();
        assert!(successes >= 190, "both periodic streams flow: {successes}");
        for id in 0..3 {
            assert_eq!(sim.node(id).controller().counters().tec(), 0);
        }
    }

    #[test]
    fn trace_records_every_bit() {
        let mut sim = Simulator::new(BusSpeed::K125);
        sim.add_node(Node::new("n", Box::new(SilentApplication)));
        sim.install_trace(SignalTrace::default());
        sim.run(77);
        assert_eq!(sim.trace().unwrap().len(), 77);
        assert_eq!(sim.now().bits(), 77);
    }

    #[test]
    fn stuck_dominant_transmitter_jams_the_bus() {
        use crate::fault::TxFault;
        let mut sim = Simulator::new(BusSpeed::K500);
        sim.add_node(Node::new(
            "sender",
            Box::new(PeriodicSender::new(frame(0x100, &[1, 2]), 400, 0)),
        ));
        sim.add_node(
            Node::new("broken", Box::new(SilentApplication))
                .with_tx_fault(TxFault::stuck_dominant(1_000, 3_000)),
        );
        sim.install_trace(SignalTrace::default());
        sim.run(5_000);
        let levels = sim.trace().unwrap().levels();
        assert!(
            levels[1_000..3_000].iter().all(|l| l.is_dominant()),
            "the bus is jammed for the whole window"
        );
        // The healthy sender keeps succeeding once the jam clears.
        let after_jam = sim
            .events()
            .iter()
            .filter(|e| {
                e.at.bits() > 3_000 && matches!(e.kind, EventKind::TransmissionSucceeded { .. })
            })
            .count();
        assert!(after_jam >= 3, "recovered after the jam: {after_jam}");
    }

    #[test]
    fn crashed_node_falls_silent_then_rejoins_after_reset() {
        use crate::fault::TxFault;
        let mut sim = Simulator::new(BusSpeed::K500);
        let sender = sim.add_node(
            Node::new(
                "flaky",
                Box::new(PeriodicSender::new(frame(0x123, &[7]), 500, 0)),
            )
            .with_tx_fault(TxFault::crash_restart(2_000, 8_000)),
        );
        sim.add_node(Node::new("rx", Box::new(SilentApplication)));
        sim.run(14_000);

        let successes: Vec<u64> = sim
            .events()
            .iter()
            .filter(|e| {
                e.node == sender && matches!(e.kind, EventKind::TransmissionSucceeded { .. })
            })
            .map(|e| e.at.bits())
            .collect();
        assert!(
            successes.iter().any(|&t| t < 2_000),
            "transmits before the crash"
        );
        assert!(
            !successes.iter().any(|&t| (2_000..8_011).contains(&t)),
            "silent while down (plus re-integration)"
        );
        assert!(
            successes.iter().any(|&t| t > 8_011),
            "resumes after the restart"
        );
        assert_eq!(sim.node(sender).controller().counters().tec(), 0);
    }

    #[test]
    fn recorder_captures_traffic_and_utilization() {
        use can_obs::Recorder;
        let mut sim = Simulator::new(BusSpeed::K500);
        sim.add_node(Node::new(
            "sender",
            Box::new(PeriodicSender::new(frame(0x0C4, &[1, 2, 3, 4]), 500, 0)),
        ));
        sim.add_node(Node::new("receiver", Box::new(SilentApplication)));
        sim.install_recorder(Recorder::enabled());
        sim.run(5_000);
        let reg = sim.recorder().clone().into_registry();
        assert_eq!(reg.counter("can_bus_bits_total"), 5_000);
        assert!(reg.counter("can_tx_success_total{node=\"0\"}") >= 8);
        assert!(reg.counter("can_frames_received_total{node=\"1\"}") >= 8);
        assert_eq!(reg.gauge("can_node_tec{node=\"0\"}"), Some(0));
        assert_eq!(reg.gauge("can_node_rec{node=\"1\"}"), Some(0));
        let util = reg.histogram("can_bus_utilization_percent").unwrap();
        assert_eq!(util.count(), 5, "one observation per 1000-bit window");
        assert!(reg.counter("can_bus_busy_bits_total") > 0);
    }

    #[test]
    fn disabled_recorder_does_not_perturb_the_run() {
        use can_obs::Recorder;
        let run = |recorder: Option<Recorder>| {
            let mut sim = Simulator::new(BusSpeed::K500);
            sim.add_node(Node::new(
                "s",
                Box::new(PeriodicSender::new(frame(0x123, &[9; 8]), 400, 0)),
            ));
            sim.add_node(Node::new("r", Box::new(SilentApplication)));
            if let Some(rec) = recorder {
                sim.install_recorder(rec);
            }
            sim.run(10_000);
            sim.take_events()
        };
        let baseline = run(None);
        let with_disabled = run(Some(Recorder::disabled()));
        let with_enabled = run(Some(Recorder::enabled()));
        assert_eq!(baseline, with_disabled);
        assert_eq!(baseline, with_enabled, "metrics are observe-only");
    }

    #[test]
    fn run_millis_converts_via_speed() {
        let mut sim = Simulator::new(BusSpeed::K50);
        sim.run_millis(2.0);
        assert_eq!(sim.now().bits(), 100);
    }

    #[test]
    fn push_run_matches_repeated_push() {
        for cap in [3usize, 7, 100] {
            for count in [0u64, 1, 2, 6, 7, 8, 23] {
                let mut by_one = SignalTrace::ring(cap);
                let mut by_run = SignalTrace::ring(cap);
                // A non-uniform prefix so head/rotation state is exercised.
                for i in 0..5u64 {
                    let level = if i % 2 == 0 {
                        Level::Dominant
                    } else {
                        Level::Recessive
                    };
                    by_one.push(level);
                    by_run.push(level);
                }
                for _ in 0..count {
                    by_one.push(Level::Recessive);
                }
                by_run.push_run(Level::Recessive, count);
                assert_eq!(
                    by_one.snapshot(),
                    by_run.snapshot(),
                    "cap={cap} count={count}"
                );
                assert_eq!(by_one.recorded(), by_run.recorded());
            }
        }
        let mut full_one = SignalTrace::default();
        let mut full_run = SignalTrace::default();
        for _ in 0..13 {
            full_one.push(Level::Recessive);
        }
        full_run.push_run(Level::Recessive, 13);
        assert_eq!(full_one.snapshot(), full_run.snapshot());
    }

    #[test]
    fn run_fast_matches_run_on_idle_bus() {
        let build = || {
            let mut sim = Simulator::new(BusSpeed::K500);
            sim.add_node(Node::new("a", Box::new(SilentApplication)));
            sim.add_node(Node::new("b", Box::new(SilentApplication)));
            sim.install_trace(SignalTrace::ring(64));
            sim.install_recorder(Recorder::enabled());
            sim
        };
        let mut slow = build();
        let mut fast = build();
        slow.run(12_345);
        fast.run_fast(12_345);
        assert_eq!(slow.now(), fast.now());
        assert_eq!(slow.events(), fast.events());
        assert_eq!(slow.busy_bits(), fast.busy_bits());
        assert_eq!(
            slow.trace().unwrap().snapshot(),
            fast.trace().unwrap().snapshot()
        );
        assert_eq!(slow.trace().unwrap().recorded(), 12_345);
        assert_eq!(
            slow.recorder().snapshot_json(),
            fast.recorder().snapshot_json()
        );
    }

    #[test]
    fn run_fast_matches_run_with_traffic() {
        let build = || {
            let mut sim = Simulator::new(BusSpeed::K500);
            sim.add_node(Node::new(
                "s",
                Box::new(PeriodicSender::new(frame(0x0C4, &[1, 2, 3, 4]), 1_700, 40)),
            ));
            sim.add_node(Node::new("r", Box::new(SilentApplication)));
            sim.install_trace(SignalTrace::default());
            sim.install_recorder(Recorder::enabled());
            sim
        };
        let mut slow = build();
        let mut fast = build();
        slow.run(25_000);
        fast.run_fast(25_000);
        assert_eq!(slow.events(), fast.events());
        assert!(!fast.events().is_empty());
        assert_eq!(
            slow.trace().unwrap().snapshot(),
            fast.trace().unwrap().snapshot()
        );
        assert_eq!(slow.busy_bits(), fast.busy_bits());
        assert_eq!(
            slow.recorder().snapshot_json(),
            fast.recorder().snapshot_json()
        );
    }

    #[test]
    fn fast_forward_actually_skips() {
        let mut sim = Simulator::new(BusSpeed::K500);
        sim.add_node(Node::new("a", Box::new(SilentApplication)));
        let advanced = sim.advance(1_000_000);
        assert_eq!(advanced, 1_000_000, "an all-idle bus skips in one quantum");
        assert_eq!(sim.now().bits(), 1_000_000);
    }

    /// Asserts `run_packed(bits)` leaves a simulator byte-identical to
    /// `run(bits)`: same clock, events, busy accounting, trace and
    /// metrics snapshot.
    fn assert_packed_matches_run(build: impl Fn() -> Simulator, bits: u64) {
        let mut slow = build();
        let mut packed = build();
        slow.run(bits);
        packed.run_packed(bits);
        assert_eq!(slow.now(), packed.now());
        assert_eq!(slow.events(), packed.events());
        assert_eq!(slow.busy_bits(), packed.busy_bits());
        match (slow.trace(), packed.trace()) {
            (Some(a), Some(b)) => {
                assert_eq!(a.snapshot(), b.snapshot());
                assert_eq!(a.recorded(), b.recorded());
            }
            (None, None) => {}
            _ => panic!("trace presence differs"),
        }
        assert_eq!(
            slow.recorder().snapshot_json(),
            packed.recorder().snapshot_json()
        );
        for id in 0..slow.node_count() {
            assert_eq!(
                slow.node(id).controller().counters(),
                packed.node(id).controller().counters(),
                "node {id} error counters"
            );
        }
    }

    #[test]
    fn run_packed_matches_run_on_idle_bus() {
        assert_packed_matches_run(
            || {
                let mut sim = Simulator::new(BusSpeed::K500);
                sim.add_node(Node::new("a", Box::new(SilentApplication)));
                sim.add_node(Node::new("b", Box::new(SilentApplication)));
                sim.install_trace(SignalTrace::ring(64));
                sim.install_recorder(Recorder::enabled());
                sim
            },
            12_345,
        );
    }

    #[test]
    fn run_packed_matches_run_with_dense_arbitration() {
        // Three contending senders with clashing periods: arbitration
        // losses, back-to-back frames and window boundaries mid-frame.
        assert_packed_matches_run(
            || {
                let mut sim = Simulator::new(BusSpeed::K500);
                sim.add_node(Node::new(
                    "hi",
                    Box::new(PeriodicSender::new(frame(0x050, &[0xA; 8]), 300, 0)),
                ));
                sim.add_node(Node::new(
                    "mid",
                    Box::new(PeriodicSender::new(frame(0x150, &[0x5C; 4]), 450, 17)),
                ));
                sim.add_node(Node::new(
                    "lo",
                    Box::new(PeriodicSender::new(frame(0x350, &[0xB; 8]), 300, 0)),
                ));
                sim.add_node(Node::new("rx", Box::new(SilentApplication)));
                sim.install_trace(SignalTrace::default());
                sim.install_recorder(Recorder::enabled());
                sim
            },
            30_000,
        );
    }

    #[test]
    fn run_packed_matches_run_with_faults() {
        use crate::fault::TxFault;
        // A crash-restart fault plus a stuck-dominant jammer: mid-frame
        // fault onsets, error frames, re-integration and recovery all
        // must cap or bypass packed stretches correctly.
        assert_packed_matches_run(
            || {
                let mut sim = Simulator::new(BusSpeed::K500);
                sim.add_node(
                    Node::new(
                        "flaky",
                        Box::new(PeriodicSender::new(frame(0x123, &[7]), 500, 0)),
                    )
                    .with_tx_fault(TxFault::crash_restart(2_000, 8_000)),
                );
                sim.add_node(
                    Node::new("jammer", Box::new(SilentApplication))
                        .with_tx_fault(TxFault::stuck_dominant(11_000, 12_500)),
                );
                sim.add_node(Node::new("rx", Box::new(SilentApplication)));
                sim.install_trace(SignalTrace::default());
                sim.install_recorder(Recorder::enabled());
                sim
            },
            16_000,
        );
    }

    #[test]
    fn journal_export_is_identical_across_all_three_kernels() {
        use can_obs::Journal;
        let build = || {
            let mut sim = Simulator::new(BusSpeed::K500);
            sim.install_journal(Journal::enabled());
            sim.add_node(
                Node::new(
                    "flaky",
                    Box::new(PeriodicSender::new(frame(0x123, &[7]), 500, 0)),
                )
                .with_tx_fault(TxFault::crash_restart(2_000, 8_000)),
            );
            sim.add_node(
                Node::new("jammer", Box::new(SilentApplication))
                    .with_tx_fault(TxFault::stuck_dominant(11_000, 12_500)),
            );
            sim.add_node(Node::new(
                "rival",
                Box::new(PeriodicSender::new(frame(0x0C4, &[1, 2]), 700, 40)),
            ));
            sim.add_node(Node::new("rx", Box::new(SilentApplication)));
            sim
        };
        use crate::fault::TxFault;
        let mut lockstep = build();
        lockstep.run(16_000);
        let mut fast = build();
        fast.run_fast(16_000);
        let mut packed = build();
        packed.run_packed(16_000);
        let export = lockstep.journal().export_jsonl();
        assert_eq!(export, fast.journal().export_jsonl());
        assert_eq!(export, packed.journal().export_jsonl());
        let (events, dropped) = can_obs::journal::parse_export(&export).unwrap();
        assert!(dropped.is_empty());
        assert!(
            events
                .iter()
                .any(|e| e.kind == can_obs::JK_FRAME_ERROR || e.kind == can_obs::JK_RX_ERROR),
            "the jam destroys frames"
        );
        assert!(events.iter().any(|e| e.kind == can_obs::JK_FRAME_ACK));
    }

    #[test]
    fn journal_links_error_retransmissions_into_one_chain() {
        use can_obs::Journal;
        let mut sim = Simulator::new(BusSpeed::K500);
        sim.install_journal(Journal::enabled());
        sim.add_node(Node::new(
            "sender",
            Box::new(PeriodicSender::new(frame(0x100, &[1, 2]), 2_000, 0)),
        ));
        sim.add_node(
            Node::new("jammer", Box::new(SilentApplication))
                .with_tx_fault(crate::fault::TxFault::stuck_dominant(40, 100)),
        );
        sim.add_node(Node::new("rx", Box::new(SilentApplication)));
        sim.run(4_000);
        let (events, _) = can_obs::journal::parse_export(&sim.journal().export_jsonl()).unwrap();
        let errors: Vec<_> = events
            .iter()
            .filter(|e| e.kind == can_obs::JK_FRAME_ERROR && e.node == 0)
            .collect();
        assert!(!errors.is_empty(), "the jam destroys the first attempt");
        let chain = errors[0].chain_id;
        assert!(
            errors[0].detail.starts_with("kind="),
            "{}",
            errors[0].detail
        );
        // The eventual successful retransmission stays on the same chain.
        let ack = events
            .iter()
            .find(|e| e.kind == can_obs::JK_FRAME_ACK && e.node == 0)
            .expect("the frame eventually goes through");
        assert_eq!(ack.chain_id, chain);
        assert!(ack.frame_seq > errors[0].frame_seq);
        // A later, fresh frame opens a new chain.
        let starts: Vec<_> = events
            .iter()
            .filter(|e| e.kind == can_obs::JK_FRAME_START && e.node == 0)
            .collect();
        assert!(starts.last().unwrap().chain_id > chain);
    }

    #[test]
    fn kernel_telemetry_accounts_bits_per_engine() {
        let build = || {
            let mut sim = Simulator::new(BusSpeed::K500);
            sim.add_node(Node::new(
                "s",
                Box::new(PeriodicSender::new(frame(0x0C4, &[1, 2, 3, 4]), 500, 0)),
            ));
            sim.add_node(Node::new("r", Box::new(SilentApplication)));
            sim
        };
        let mut lockstep = build();
        lockstep.run(5_000);
        let t = lockstep.kernel_telemetry();
        assert_eq!(t.lockstep_bits(), 5_000);
        assert_eq!(t.packed_bits() + t.skipped_bits(), 0);

        let mut packed = build();
        packed.run_packed(5_000);
        let t = packed.kernel_telemetry();
        assert_eq!(
            t.lockstep_bits() + t.skipped_bits() + t.packed_bits(),
            5_000
        );
        assert!(
            t.packed_bits() > 500,
            "frame bodies pack: {}",
            t.packed_bits()
        );
        assert!(t.skipped_bits() > 0, "inter-frame gaps skip");
        assert!(t.stretches() > 0);
        assert_eq!(t.stretch_lengths().count(), t.stretches());
        // The periodic sender's polls force AppPoll fallbacks; arbitration
        // and frame boundaries force post-AND/short-cap ones.
        assert!(t.fallback_count(FallbackCause::AppPoll) > 0);
        let total: u64 = t.fallbacks().iter().map(|(_, n)| n).sum();
        assert!(total > 0);
        let json = t.to_json();
        assert!(can_obs::json::parse(&json).is_ok(), "{json}");
    }

    #[test]
    fn kernel_telemetry_attributes_fault_fallbacks() {
        // A channel-fault layer with activity inside the run forces
        // FaultStack fallbacks; a node-level TX fault forces NodeFault.
        let mut sim = Simulator::new(BusSpeed::K500);
        sim.push_fault_layer(FaultModel::scripted(vec![1_000, 1_005]));
        sim.add_node(Node::new(
            "s",
            Box::new(PeriodicSender::new(frame(0x0C4, &[1]), 600, 0)),
        ));
        sim.add_node(
            Node::new("flaky", Box::new(SilentApplication))
                .with_tx_fault(crate::fault::TxFault::stuck_dominant(2_000, 2_050)),
        );
        sim.run_packed(4_000);
        let t = sim.kernel_telemetry();
        assert!(t.fallback_count(FallbackCause::FaultStack) > 0);
        assert!(t.fallback_count(FallbackCause::NodeFault) > 0);
    }

    #[test]
    fn packed_stretches_actually_pack() {
        // During an uncontended frame body the kernel must commit
        // multi-bit quanta, not fall back to lockstep.
        let mut sim = Simulator::new(BusSpeed::K500);
        sim.add_node(Node::new(
            "s",
            Box::new(PeriodicSender::new(frame(0x0C4, &[1, 2, 3, 4]), 500, 0)),
        ));
        sim.add_node(Node::new("r", Box::new(SilentApplication)));
        let mut quanta = 0u64;
        let mut max_quantum = 0u64;
        while sim.now().bits() < 5_000 {
            let n = sim.advance_packed(5_000 - sim.now().bits());
            quanta += 1;
            max_quantum = max_quantum.max(n);
        }
        assert!(
            max_quantum >= 16,
            "some stretch spans a large part of a word: {max_quantum}"
        );
        assert!(
            quanta < 1_500,
            "5000 bits resolve in far fewer quanta than bits: {quanta}"
        );
    }
}

//! Property tests over the simulator: protocol invariants that must hold
//! for arbitrary benign configurations.

use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId};
use can_sim::{EventKind, Node, SimBuilder};
use proptest::prelude::*;

/// Distinct (id, period, payload) sender configurations.
fn arb_senders() -> impl Strategy<Value = Vec<(u16, u64, Vec<u8>)>> {
    proptest::collection::btree_map(
        0u16..=CanId::MAX_RAW,
        (600u64..4_000, proptest::collection::vec(any::<u8>(), 0..=8)),
        1..8,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(id, (period, payload))| (id, period, payload))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary benign periodic traffic is error-free, and every frame
    /// that completes is delivered to every other node byte-identical.
    #[test]
    fn benign_traffic_invariants(senders in arb_senders()) {
        let mut builder = SimBuilder::new(BusSpeed::K500);
        let n = senders.len();
        for (i, (id, period, payload)) in senders.iter().enumerate() {
            let frame = CanFrame::data_frame(CanId::from_raw(*id), payload).unwrap();
            builder = builder.node(Node::new(
                format!("ecu{i}"),
                Box::new(PeriodicSender::new(frame, *period, (i as u64) * 41)),
            ));
        }
        let mut sim = builder
            .node(Node::new("monitor", Box::new(SilentApplication)))
            .build();
        sim.run(20_000);

        // Invariant 1: no protocol errors.
        let errors = sim
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ErrorDetected { .. }))
            .count();
        prop_assert_eq!(errors, 0, "benign traffic must be error-free");

        // Invariant 2: every successful transmission is received by all
        // other nodes (n senders + 1 monitor ⇒ n receivers per frame).
        let successes: Vec<CanFrame> = sim
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::TransmissionSucceeded { frame } => Some(*frame),
                _ => None,
            })
            .collect();
        let receptions: Vec<CanFrame> = sim
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::FrameReceived { frame } => Some(*frame),
                _ => None,
            })
            .collect();
        prop_assert_eq!(
            receptions.len(),
            successes.len() * n,
            "every frame reaches every other node"
        );
        // Byte-identical delivery.
        for frame in &successes {
            prop_assert!(receptions.iter().filter(|r| *r == frame).count() >= n);
        }

        // Invariant 3: all counters stay clean.
        for node in 0..sim.node_count() {
            prop_assert_eq!(sim.node(node).controller().counters().tec(), 0);
            prop_assert_eq!(sim.node(node).controller().counters().rec(), 0);
        }
    }

    /// Arbitration never destroys a frame: with several saturating
    /// senders on distinct identifiers, the highest-priority one is never
    /// blocked and the bus stays error-free.
    #[test]
    fn arbitration_is_lossless(ids in proptest::collection::btree_set(0u16..=CanId::MAX_RAW, 2..6)) {
        let ids: Vec<u16> = ids.into_iter().collect();
        let mut builder = SimBuilder::new(BusSpeed::K500);
        for (i, &id) in ids.iter().enumerate() {
            let frame = CanFrame::data_frame(CanId::from_raw(id), &[i as u8; 8]).unwrap();
            // Aggressive 700-bit periods force constant contention.
            builder = builder.node(Node::new(
                format!("ecu{i}"),
                Box::new(PeriodicSender::new(frame, 700, 0)),
            ));
        }
        let mut sim = builder
            .node(Node::new("monitor", Box::new(SilentApplication)))
            .build();
        sim.run(15_000);

        let errors = sim
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ErrorDetected { .. }))
            .count();
        prop_assert_eq!(errors, 0, "contention is resolved by arbitration, not errors");

        // The highest-priority sender always transmits on schedule.
        let top = *ids.iter().min().unwrap();
        let top_successes = sim
            .events()
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::TransmissionSucceeded { frame }
                if frame.id().raw() == top))
            .count();
        prop_assert!(top_successes >= 15_000 / 700 - 2,
            "highest priority is never starved: {}", top_successes);
    }

    /// The observed bus load equals the frame-bit ratio: for a single
    /// sender, busy bits per period ≈ wire length + IFS.
    #[test]
    fn bus_load_accounting(period in 500u64..3_000, dlc in 0usize..=8) {
        let frame = CanFrame::data_frame(CanId::from_raw(0x155), &vec![0xA5u8; dlc]).unwrap();
        let wire_len = can_core::bitstream::stuff_frame(&frame).bits.len() as f64;
        let mut sim = SimBuilder::new(BusSpeed::K500)
            .node(Node::new("tx", Box::new(PeriodicSender::new(frame, period, 0))))
            .node(Node::new("rx", Box::new(SilentApplication)))
            .build();
        sim.run(period * 20);
        let expected = (wire_len + 3.0) / period as f64;
        let observed = sim.observed_bus_load();
        prop_assert!(
            (observed - expected).abs() < 0.03,
            "observed {:.3} vs expected {:.3}", observed, expected
        );
    }
}

//! Controller edge cases: remote frames, listen-only taps, single-shot
//! transmissions, DLC extremes, and queue behaviour under pressure.

use can_core::app::{Application, PeriodicSender, SilentApplication};
use can_core::{BitInstant, BusSpeed, CanFrame, CanId};
use can_sim::{ControllerConfig, EventKind, Node, SimBuilder};

fn frame(id: u16, data: &[u8]) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
}

#[test]
fn remote_frame_round_trip_on_the_bus() {
    let rtr = CanFrame::remote_frame(CanId::from_raw(0x321), 4).unwrap();
    let mut sim = SimBuilder::new(BusSpeed::K500)
        .node(Node::new(
            "requester",
            Box::new(PeriodicSender::new(rtr, 10_000, 0)),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    sim.run(400);
    let delivered = sim
        .events()
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::FrameReceived { frame } => Some(*frame),
            _ => None,
        })
        .expect("the remote frame must arrive");
    assert!(delivered.is_remote());
    assert_eq!(delivered.dlc(), 4);
    assert_eq!(delivered.data(), &[] as &[u8]);
}

#[test]
fn zero_dlc_frame_round_trip() {
    let mut sim = SimBuilder::new(BusSpeed::K500)
        .node(Node::new(
            "tx",
            Box::new(PeriodicSender::new(frame(0x0AA, &[]), 10_000, 0)),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    sim.run(300);
    assert!(sim.events().iter().any(|e| matches!(&e.kind,
        EventKind::FrameReceived { frame } if frame.dlc() == 0)));
}

#[test]
fn listen_only_node_does_not_acknowledge() {
    // A transmitter with ONLY a listen-only witness never gets an ACK:
    // the ISO passive-ACK-error rule caps it at error-passive forever.
    let mut sim = SimBuilder::new(BusSpeed::K500)
        .node(Node::new(
            "tx",
            Box::new(PeriodicSender::new(frame(0x111, &[1]), 300, 0)),
        ))
        .node(Node::with_config(
            "tap",
            Box::new(SilentApplication),
            ControllerConfig {
                ack_enabled: false,
                retransmit: true,
            },
        ))
        .build();
    sim.run(20_000);
    assert!(
        !sim.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::TransmissionSucceeded { .. })),
        "nothing can succeed without an acknowledging receiver"
    );
    assert!(sim.events().iter().any(|e| matches!(
        e.kind,
        EventKind::ErrorDetected {
            kind: can_core::errors::CanErrorKind::Ack,
            ..
        }
    )));
    // But the listen-only tap still receives the frames.
    assert!(sim
        .events()
        .iter()
        .any(|e| e.node == 1 && matches!(e.kind, EventKind::FrameReceived { .. })));
}

#[test]
fn single_shot_mode_does_not_retransmit() {
    // retransmit=false: the destroyed frame is dropped, not retried.
    struct OneShot(Option<CanFrame>);
    impl Application for OneShot {
        fn poll(&mut self, _now: BitInstant) -> Option<CanFrame> {
            self.0.take()
        }
    }
    let mut sim = SimBuilder::new(BusSpeed::K500)
        .node(Node::with_config(
            "oneshot",
            Box::new(OneShot(Some(frame(0x100, &[9])))),
            ControllerConfig {
                ack_enabled: true,
                retransmit: false,
            },
        ))
        .build();
    // No other node: the ACK fails; with retransmission off the frame is
    // abandoned after one attempt.
    sim.run(3_000);
    let starts = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TransmissionStarted { .. }))
        .count();
    assert_eq!(starts, 1, "single-shot means exactly one attempt");
}

#[test]
fn mailbox_pressure_prioritizes_strictly_by_identifier() {
    // One node holds three pending frames; they leave in priority order
    // regardless of enqueue order.
    struct Burst(Vec<CanFrame>);
    impl Application for Burst {
        fn poll(&mut self, _now: BitInstant) -> Option<CanFrame> {
            self.0.pop()
        }
    }
    let mut sim = SimBuilder::new(BusSpeed::K500)
        .node(Node::new(
            "burst",
            Box::new(Burst(vec![
                frame(0x050, &[1]),
                frame(0x300, &[2]),
                frame(0x100, &[3]),
            ])),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    sim.run(2_000);
    let order: Vec<u16> = sim
        .events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::TransmissionSucceeded { frame } => Some(frame.id().raw()),
            _ => None,
        })
        .collect();
    assert_eq!(order, vec![0x050, 0x100, 0x300]);
}

#[test]
fn back_to_back_frames_honor_the_interframe_space() {
    // A saturating sender emits frames separated by exactly the 3-bit
    // intermission: successive SOFs are frame_len + 3 apart.
    struct Saturate(CanFrame);
    impl Application for Saturate {
        fn poll(&mut self, _now: BitInstant) -> Option<CanFrame> {
            Some(self.0)
        }
    }
    let mut sim = SimBuilder::new(BusSpeed::K500)
        .node(Node::new(
            "sat",
            Box::new(Saturate(frame(0x2AA, &[0x55; 8]))),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    sim.run(3_000);
    let starts: Vec<u64> = sim
        .events()
        .iter()
        .filter(|e| e.node == 0 && matches!(e.kind, EventKind::TransmissionStarted { .. }))
        .map(|e| e.at.bits())
        .collect();
    assert!(starts.len() >= 3);
    let wire_len = can_core::bitstream::stuff_frame(&frame(0x2AA, &[0x55; 8]))
        .bits
        .len() as u64;
    for gap in starts.windows(2) {
        let delta = gap[1] - gap[0];
        assert_eq!(
            delta,
            wire_len + 3,
            "SOF-to-SOF spacing must be frame + IFS"
        );
    }
}

#[test]
fn fifteen_senders_share_one_bus_cleanly() {
    let mut builder = SimBuilder::new(BusSpeed::K500);
    for i in 0..15u16 {
        builder = builder.node(Node::new(
            format!("ecu{i}"),
            Box::new(PeriodicSender::new(
                frame(0x080 + i * 0x20, &[i as u8; 8]),
                2_500 + i as u64 * 13,
                i as u64 * 29,
            )),
        ));
    }
    let mut sim = builder.build();
    sim.run(50_000);
    assert!(
        !sim.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::ErrorDetected { .. })),
        "arbitration must keep a crowded bus error-free"
    );
    let successes = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TransmissionSucceeded { .. }))
        .count();
    assert!(successes > 250, "all senders make progress: {successes}");
    // Strict priority inversion check: the event log respects arbitration —
    // whenever two frames were pending simultaneously, the lower id won.
    // (Weak proxy: the busiest high-priority sender is never starved.)
    let high_priority_successes = sim
        .events()
        .iter()
        .filter(|e| {
            matches!(&e.kind, EventKind::TransmissionSucceeded { frame }
                if frame.id().raw() == 0x080)
        })
        .count();
    assert!(high_priority_successes >= 18);
}

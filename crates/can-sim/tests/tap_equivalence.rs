//! Passive frame taps observe the identical `(frame, instant)` sequence
//! in all three sim modes, and exactly one delivery happens per completed
//! bus frame.

use std::cell::RefCell;
use std::rc::Rc;

use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BitInstant, BusSpeed, CanFrame, CanId};
use can_sim::{EventKind, FrameTap, Node, SimBuilder, Simulator};

type TapLog = Rc<RefCell<Vec<(u64, u16, Vec<u8>)>>>;

struct RecordingTap {
    log: TapLog,
}

impl FrameTap for RecordingTap {
    fn on_frame(&mut self, frame: &CanFrame, now: BitInstant) {
        self.log
            .borrow_mut()
            .push((now.bits(), frame.id().raw(), frame.data().to_vec()));
    }
}

fn frame(id: u16, data: &[u8]) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
}

fn build_with_taps(tap_count: usize) -> (Simulator, Vec<TapLog>) {
    let mut builder = SimBuilder::new(BusSpeed::K125)
        .node(Node::new(
            "a",
            Box::new(PeriodicSender::new(frame(0x0C0, &[1; 8]), 777, 13)),
        ))
        .node(Node::new(
            "b",
            Box::new(PeriodicSender::new(frame(0x2C0, &[2; 4]), 1_111, 29)),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)));
    let mut logs = Vec::new();
    for _ in 0..tap_count {
        let log: TapLog = Rc::new(RefCell::new(Vec::new()));
        logs.push(log.clone());
        builder = builder.tap(Box::new(RecordingTap { log }));
    }
    (builder.build(), logs)
}

const RUN_BITS: u64 = 30_000;

#[test]
fn tap_sees_one_delivery_per_completed_frame() {
    let (mut sim, logs) = build_with_taps(1);
    sim.run(RUN_BITS);
    let log = logs[0].borrow();
    assert!(!log.is_empty(), "no frames observed");
    let completions: Vec<(u64, u16)> = sim
        .events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::TransmissionSucceeded { frame } => Some((e.at.bits(), frame.id().raw())),
            _ => None,
        })
        .collect();
    let tapped: Vec<(u64, u16)> = log.iter().map(|(at, id, _)| (*at, *id)).collect();
    assert_eq!(tapped, completions);
}

#[test]
fn tap_log_is_identical_across_lockstep_fast_and_packed() {
    let (mut lockstep, lockstep_logs) = build_with_taps(1);
    lockstep.run(RUN_BITS);
    let reference = lockstep_logs[0].borrow().clone();
    assert!(!reference.is_empty());

    let (mut fast, fast_logs) = build_with_taps(1);
    fast.run_fast(RUN_BITS);
    assert_eq!(*fast_logs[0].borrow(), reference, "fast-forward diverged");

    let (mut packed, packed_logs) = build_with_taps(1);
    packed.run_packed(RUN_BITS);
    assert_eq!(*packed_logs[0].borrow(), reference, "packed diverged");
}

#[test]
fn many_taps_on_one_bus_see_the_same_sequence() {
    let (mut sim, logs) = build_with_taps(4);
    assert_eq!(sim.tap_count(), 4);
    sim.run(RUN_BITS);
    let reference = logs[0].borrow().clone();
    assert!(!reference.is_empty());
    for log in &logs[1..] {
        assert_eq!(*log.borrow(), reference);
    }
}

struct HorizonTap {
    wake: u64,
}

impl FrameTap for HorizonTap {
    fn on_frame(&mut self, _frame: &CanFrame, _now: BitInstant) {}

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        (now.bits() < self.wake).then(|| BitInstant::from_bits(self.wake))
    }
}

#[test]
fn tap_horizon_bounds_fast_forward_without_changing_events() {
    let build = |with_horizon: bool| {
        let mut builder = SimBuilder::new(BusSpeed::K125)
            .node(Node::new(
                "a",
                Box::new(PeriodicSender::new(frame(0x0C0, &[1; 2]), 5_000, 13)),
            ))
            .node(Node::new("rx", Box::new(SilentApplication)));
        if with_horizon {
            builder = builder.tap(Box::new(HorizonTap { wake: 2_500 }));
        }
        builder.build()
    };
    let mut plain = build(false);
    plain.run_fast(RUN_BITS);
    let mut bounded = build(true);
    bounded.run_fast(RUN_BITS);
    assert_eq!(plain.events(), bounded.events());
}

//! Reproducibility: identical configurations must produce bit-identical
//! runs — the property that makes every EXPERIMENTS.md number
//! regenerable.

use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId};
use can_sim::{EventKind, FaultModel, Node, SimBuilder, Simulator};

fn frame(id: u16, data: &[u8]) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
}

fn builder() -> SimBuilder {
    SimBuilder::new(BusSpeed::K125)
        .node(Node::new(
            "a",
            Box::new(PeriodicSender::new(frame(0x0C0, &[1; 8]), 777, 13)),
        ))
        .node(Node::new(
            "b",
            Box::new(PeriodicSender::new(frame(0x2C0, &[2; 4]), 1_111, 29)),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
}

fn build() -> Simulator {
    builder().build()
}

fn fingerprint(sim: &Simulator) -> Vec<(u64, usize, String)> {
    sim.events()
        .iter()
        .map(|e| (e.at.bits(), e.node, format!("{:?}", e.kind)))
        .collect()
}

#[test]
fn identical_runs_produce_identical_event_logs() {
    let mut first = build();
    let mut second = build();
    first.run(30_000);
    second.run(30_000);
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert_eq!(first.observed_bus_load(), second.observed_bus_load());
}

#[test]
fn stepping_granularity_does_not_matter() {
    // run(n) in one call vs many small calls: same trajectory.
    let mut bulk = build();
    bulk.run(10_000);
    let mut stepped = build();
    for _ in 0..100 {
        stepped.run(100);
    }
    assert_eq!(fingerprint(&bulk), fingerprint(&stepped));
}

#[test]
fn seeded_fault_models_are_reproducible() {
    let run_with_seed = |seed: u64| {
        let mut sim = builder().fault(FaultModel::random(1e-3, seed)).build();
        sim.run(30_000);
        fingerprint(&sim)
    };
    assert_eq!(run_with_seed(42), run_with_seed(42));
    assert_ne!(run_with_seed(42), run_with_seed(43));
}

#[test]
fn traced_and_untraced_runs_agree() {
    // Enabling the signal trace must not perturb the simulation.
    let mut plain = build();
    plain.run(10_000);
    let mut traced = builder().trace().build();
    traced.run(10_000);
    assert_eq!(fingerprint(&plain), fingerprint(&traced));
    assert_eq!(traced.trace().unwrap().len(), 10_000);
}

#[test]
fn take_events_drains_without_disturbing_the_future() {
    let mut reference = build();
    reference.run(20_000);
    let all = fingerprint(&reference);

    let mut drained = build();
    drained.run(10_000);
    let first_half_len = drained.events().len();
    let first_half = drained.take_events();
    assert!(drained.events().is_empty());
    drained.run(10_000);
    let second_half = drained.events();

    assert_eq!(first_half.len() + second_half.len(), all.len());
    assert_eq!(first_half.len(), first_half_len);
    // The concatenation equals the uninterrupted run.
    let recombined: Vec<(u64, usize, String)> = first_half
        .iter()
        .chain(second_half.iter())
        .map(|e| (e.at.bits(), e.node, format!("{:?}", e.kind)))
        .collect();
    assert_eq!(recombined, all);
}

#[test]
fn pinned_regression_episode_length() {
    // Regression pin on the raw protocol trajectory: a lone
    // unacknowledged transmitter's first ACK error lands at a fixed
    // instant. If an intentional protocol change shifts this, update
    // EXPERIMENTS.md alongside.
    let mut sim = SimBuilder::new(BusSpeed::K50)
        .node(Node::new(
            "lone",
            Box::new(PeriodicSender::new(frame(0x123, &[0xA5; 8]), 400, 0)),
        ))
        .build();
    sim.run(5_000);
    let first_error = sim
        .events()
        .iter()
        .find(|e| matches!(e.kind, EventKind::ErrorDetected { .. }))
        .expect("a lone transmitter sees an ACK error")
        .at
        .bits();
    // SOF at bit 12 (after the 11-bit integration completes at sample 10
    // and the transmit decision at sample 11), then 98 stuffed wire bits
    // to the ACK slot of this particular frame ⇒ the error at bit 111.
    assert_eq!(
        first_error, 111,
        "lone-transmitter ACK-error instant moved — protocol change?"
    );
}

//! Offline vendored stand-in for `serde`'s derive macros.
//!
//! The build environment of this repository cannot reach crates.io, and no
//! code in the workspace actually calls `Serialize`/`Deserialize` methods —
//! the derives exist on types so that a future serialization backend can be
//! dropped in. This crate keeps those annotations compiling by providing
//! no-op derive macros (including the `#[serde(...)]` helper attribute).
//! Swapping back to real serde is a one-line change in the workspace
//! manifest.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts (and ignores) `#[serde(...)]` helper
/// attributes and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts (and ignores) `#[serde(...)]` helper
/// attributes and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

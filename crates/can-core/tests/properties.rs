//! Property-based tests for the CAN 2.0A data-link primitives.

use can_core::bitstream::{
    decode_frame, stuff_frame, Destuffed, Destuffer, FrameLayout, Stuffer, STUFF_RUN,
};
use can_core::crc::{checksum, Crc15};
use can_core::{CanFrame, CanId, ErrorCounters, ErrorState, Level};
use proptest::prelude::*;

fn arb_id() -> impl Strategy<Value = CanId> {
    (0u16..=CanId::MAX_RAW).prop_map(CanId::from_raw)
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..=8)
}

fn arb_frame() -> impl Strategy<Value = CanFrame> {
    (arb_id(), arb_payload()).prop_map(|(id, payload)| CanFrame::data_frame(id, &payload).unwrap())
}

fn arb_levels(max: usize) -> impl Strategy<Value = Vec<Level>> {
    proptest::collection::vec(any::<bool>().prop_map(Level::from_bit), 0..max)
}

proptest! {
    /// Stuffed wire form decodes back to the original frame.
    #[test]
    fn encode_decode_round_trip(frame in arb_frame()) {
        let wire = stuff_frame(&frame);
        prop_assert_eq!(decode_frame(&wire.bits).unwrap(), frame);
    }

    /// The stuffed region never contains six consecutive equal levels.
    #[test]
    fn stuffing_bounds_runs(frame in arb_frame()) {
        let wire = stuff_frame(&frame);
        let region = &wire.bits[..wire.stuffed_region_len];
        for window in region.windows(STUFF_RUN + 1) {
            prop_assert!(
                !window.iter().all(|&b| b == window[0]),
                "six equal levels inside stuffed region"
            );
        }
    }

    /// Stuff-bit count is bounded by the theoretical maximum: one stuff bit
    /// per four payload bits after the first run of five.
    #[test]
    fn stuff_count_is_bounded(frame in arb_frame()) {
        let wire = stuff_frame(&frame);
        let unstuffed = FrameLayout::of(&frame).stuffed_region_bits();
        let max_stuff = (unstuffed.saturating_sub(1)) / 4;
        prop_assert!(wire.stuff_count() <= max_stuff,
            "{} stuff bits for a {}-bit region", wire.stuff_count(), unstuffed);
    }

    /// Streaming stuffer followed by streaming destuffer is the identity on
    /// arbitrary payload bit sequences.
    #[test]
    fn stuffer_destuffer_identity(payload in arb_levels(256)) {
        let mut stuffer = Stuffer::new();
        let mut wire = Vec::new();
        for &bit in &payload {
            wire.push(bit);
            if let Some(stuff) = stuffer.push(bit) {
                wire.push(stuff);
            }
        }
        let mut destuffer = Destuffer::new();
        let mut recovered = Vec::new();
        for &bit in &wire {
            match destuffer.push(bit) {
                Destuffed::Bit(b) => recovered.push(b),
                Destuffed::StuffBit => {}
                Destuffed::Violation => prop_assert!(false, "violation in round trip"),
            }
        }
        prop_assert_eq!(recovered, payload);
    }

    /// CRC streaming equals batch computation regardless of split point.
    #[test]
    fn crc_streaming_split_invariance(bits in arb_levels(128), split in 0usize..128) {
        let split = split.min(bits.len());
        let mut crc = Crc15::new();
        crc.push_bits(&bits[..split]);
        crc.push_bits(&bits[split..]);
        prop_assert_eq!(crc.value(), checksum(&bits));
    }

    /// Any single-bit corruption of the wire frame is detected by the
    /// decoder (stuff, CRC or form violation) — never silently accepted as
    /// a different valid frame with the same length.
    #[test]
    fn single_bit_corruption_never_yields_wrong_frame(
        frame in arb_frame(),
        flip_seed in any::<u64>(),
    ) {
        let wire = stuff_frame(&frame);
        let idx = (flip_seed as usize) % wire.bits.len();
        let mut corrupted = wire.bits.clone();
        corrupted[idx] = corrupted[idx].opposite();
        if let Ok(decoded) = decode_frame(&corrupted) {
            // The only accepted single-bit changes are in bits carrying
            // no frame content for a receiver: the ACK slot, or the
            // tolerated final EOF bit. (An Err is the expected outcome.)
            prop_assert_eq!(decoded, frame,
                "decoder produced a different frame after corruption");
        }
    }

    /// TEC bus-off always requires exactly ceil((256 - tec)/8) errors.
    #[test]
    fn counter_ladder_reaches_bus_off(pre_errors in 0u16..32) {
        let mut c = ErrorCounters::new();
        for _ in 0..pre_errors {
            c.on_transmit_error();
        }
        let remaining = c.transmit_errors_until_bus_off();
        for _ in 0..remaining.saturating_sub(1) {
            c.on_transmit_error();
        }
        prop_assert_ne!(c.state(), ErrorState::BusOff);
        c.on_transmit_error();
        prop_assert_eq!(c.state(), ErrorState::BusOff);
    }

    /// Successful transmissions and errors never drive the TEC negative or
    /// skip the passive band on the way up.
    #[test]
    fn counter_state_is_monotone_in_tec(ops in proptest::collection::vec(any::<bool>(), 0..600)) {
        let mut c = ErrorCounters::new();
        let mut prev_tec = 0u16;
        for op in ops {
            if op {
                c.on_transmit_error();
                prop_assert_eq!(c.tec(), prev_tec + 8);
            } else {
                c.on_transmit_success();
                prop_assert_eq!(c.tec(), prev_tec.saturating_sub(1));
            }
            prev_tec = c.tec();
            let expected = if c.tec() >= 256 {
                ErrorState::BusOff
            } else if c.tec() > 127 {
                ErrorState::ErrorPassive
            } else {
                ErrorState::ErrorActive
            };
            prop_assert_eq!(c.state(), expected);
        }
    }

    /// Identifier priority is a strict total order consistent with `Ord`.
    #[test]
    fn id_priority_matches_ord(a in arb_id(), b in arb_id()) {
        prop_assert_eq!(a.outranks(b), a < b);
        prop_assert!(!(a.outranks(b) && b.outranks(a)));
    }

    /// Wired-AND over any permutation yields the same level.
    #[test]
    fn wired_and_is_commutative(levels in arb_levels(16), rotation in 0usize..16) {
        if levels.is_empty() {
            return Ok(());
        }
        let rot = rotation % levels.len();
        let mut rotated = levels.clone();
        rotated.rotate_left(rot);
        prop_assert_eq!(
            Level::wired_and(levels),
            Level::wired_and(rotated)
        );
    }
}

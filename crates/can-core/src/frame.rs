//! CAN 2.0A data and remote frames.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::errors::InvalidFrame;
use crate::id::CanId;

/// Maximum payload length of a CAN 2.0A frame in bytes.
pub const MAX_PAYLOAD: usize = 8;

/// A CAN 2.0A frame at the application level: identifier, RTR flag, DLC and
/// payload.
///
/// This is the view a classic CAN controller exposes to software (paper
/// §II-C, nodes A/B): the controller itself adds SOF, CRC, ACK, EOF and bit
/// stuffing. Use [`crate::bitstream`] for the wire-level form.
///
/// ```
/// use can_core::{CanFrame, CanId};
///
/// # fn main() -> Result<(), can_core::errors::InvalidFrame> {
/// let frame = CanFrame::builder(CanId::new(0x260).unwrap())
///     .data(&[0x01, 0x02])?
///     .build();
/// assert_eq!(frame.dlc(), 2);
/// assert_eq!(frame.data(), &[0x01, 0x02]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CanFrame {
    id: CanId,
    rtr: bool,
    dlc: u8,
    data: [u8; MAX_PAYLOAD],
}

impl CanFrame {
    /// Starts building a data frame with the given identifier.
    pub fn builder(id: CanId) -> CanFrameBuilder {
        CanFrameBuilder {
            id,
            rtr: false,
            dlc: 0,
            data: [0; MAX_PAYLOAD],
        }
    }

    /// Creates a data frame from an identifier and payload.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFrame::PayloadTooLong`] if `payload.len() > 8`.
    pub fn data_frame(id: CanId, payload: &[u8]) -> Result<Self, InvalidFrame> {
        Ok(Self::builder(id).data(payload)?.build())
    }

    /// Creates a remote frame (RTR set) requesting `dlc` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFrame::DlcTooLarge`] if `dlc > 8`.
    pub fn remote_frame(id: CanId, dlc: u8) -> Result<Self, InvalidFrame> {
        if dlc as usize > MAX_PAYLOAD {
            return Err(InvalidFrame::DlcTooLarge { dlc });
        }
        Ok(CanFrame {
            id,
            rtr: true,
            dlc,
            data: [0; MAX_PAYLOAD],
        })
    }

    /// The frame identifier.
    #[inline]
    pub const fn id(&self) -> CanId {
        self.id
    }

    /// Whether the remote transmission request bit is set.
    #[inline]
    pub const fn is_remote(&self) -> bool {
        self.rtr
    }

    /// The data length code (0–8).
    #[inline]
    pub const fn dlc(&self) -> u8 {
        self.dlc
    }

    /// The payload, truncated to the DLC. Empty for remote frames.
    #[inline]
    pub fn data(&self) -> &[u8] {
        if self.rtr {
            &[]
        } else {
            &self.data[..self.dlc as usize]
        }
    }

    /// Nominal (unstuffed) wire length of this frame in bits, excluding the
    /// 3-bit intermission: SOF + 11 ID + RTR + IDE + r0 + 4 DLC + 8·DLC data
    /// + 15 CRC + CRC delimiter + ACK slot + ACK delimiter + 7 EOF.
    ///
    /// ```
    /// use can_core::{CanFrame, CanId};
    /// let f = CanFrame::data_frame(CanId::from_raw(0x100), &[0; 8]).unwrap();
    /// assert_eq!(f.nominal_bit_len(), 44 + 64);
    /// ```
    pub fn nominal_bit_len(&self) -> usize {
        let data_bits = if self.rtr { 0 } else { self.dlc as usize * 8 };
        1 + 11 + 1 + 1 + 1 + 4 + data_bits + 15 + 1 + 1 + 1 + 7
    }
}

impl fmt::Display for CanFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rtr {
            write!(f, "{} [RTR dlc={}]", self.id, self.dlc)
        } else {
            write!(f, "{} [{}]", self.id, self.dlc)?;
            for byte in self.data() {
                write!(f, " {byte:02X}")?;
            }
            Ok(())
        }
    }
}

/// Builder for [`CanFrame`] (see `C-BUILDER`).
#[derive(Debug, Clone)]
pub struct CanFrameBuilder {
    id: CanId,
    rtr: bool,
    dlc: u8,
    data: [u8; MAX_PAYLOAD],
}

impl CanFrameBuilder {
    /// Sets the payload (implies a data frame and sets DLC to its length).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFrame::PayloadTooLong`] if `payload.len() > 8`.
    pub fn data(mut self, payload: &[u8]) -> Result<Self, InvalidFrame> {
        if payload.len() > MAX_PAYLOAD {
            return Err(InvalidFrame::PayloadTooLong { len: payload.len() });
        }
        self.dlc = payload.len() as u8;
        self.data = [0; MAX_PAYLOAD];
        self.data[..payload.len()].copy_from_slice(payload);
        self.rtr = false;
        Ok(self)
    }

    /// Builds the frame.
    pub fn build(self) -> CanFrame {
        CanFrame {
            id: self.id,
            rtr: self.rtr,
            dlc: self.dlc,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u16) -> CanId {
        CanId::from_raw(raw)
    }

    #[test]
    fn data_frame_round_trip() {
        let frame = CanFrame::data_frame(id(0x173), &[1, 2, 3]).unwrap();
        assert_eq!(frame.id(), id(0x173));
        assert_eq!(frame.dlc(), 3);
        assert_eq!(frame.data(), &[1, 2, 3]);
        assert!(!frame.is_remote());
    }

    #[test]
    fn payload_too_long_rejected() {
        let err = CanFrame::data_frame(id(0), &[0; 9]).unwrap_err();
        assert_eq!(err, InvalidFrame::PayloadTooLong { len: 9 });
    }

    #[test]
    fn remote_frame_has_empty_data() {
        let frame = CanFrame::remote_frame(id(0x321), 4).unwrap();
        assert!(frame.is_remote());
        assert_eq!(frame.dlc(), 4);
        assert_eq!(frame.data(), &[] as &[u8]);
    }

    #[test]
    fn remote_frame_dlc_validation() {
        assert_eq!(
            CanFrame::remote_frame(id(0), 9).unwrap_err(),
            InvalidFrame::DlcTooLarge { dlc: 9 }
        );
        assert!(CanFrame::remote_frame(id(0), 8).is_ok());
    }

    #[test]
    fn nominal_bit_len_matches_paper_shapes() {
        // 8-byte frame: 44 overhead + 64 data = 108 unstuffed bits; with
        // stuff bits the paper's "average CAN frame consists of 125 bits".
        let f8 = CanFrame::data_frame(id(0x7FF), &[0xFF; 8]).unwrap();
        assert_eq!(f8.nominal_bit_len(), 108);
        let f0 = CanFrame::data_frame(id(0), &[]).unwrap();
        assert_eq!(f0.nominal_bit_len(), 44);
        let rtr = CanFrame::remote_frame(id(0), 8).unwrap();
        assert_eq!(rtr.nominal_bit_len(), 44);
    }

    #[test]
    fn builder_overwrites_previous_payload() {
        let frame = CanFrame::builder(id(1))
            .data(&[9; 8])
            .unwrap()
            .data(&[1])
            .unwrap()
            .build();
        assert_eq!(frame.data(), &[1]);
        assert_eq!(frame.dlc(), 1);
    }

    #[test]
    fn display_formats() {
        let f = CanFrame::data_frame(id(0x64), &[0xAB, 0x00]).unwrap();
        assert_eq!(f.to_string(), "0x064 [2] AB 00");
        let r = CanFrame::remote_frame(id(0x64), 2).unwrap();
        assert_eq!(r.to_string(), "0x064 [RTR dlc=2]");
    }

    #[test]
    fn frames_are_hashable_and_copyable() {
        use std::collections::HashSet;
        let f = CanFrame::data_frame(id(5), &[1]).unwrap();
        let copied = f;
        let mut set = HashSet::new();
        set.insert(f);
        assert!(set.contains(&copied));
    }
}

//! Error values and the five CAN error types.
//!
//! ISO 11898-1 defines five error detection mechanisms (paper §II-B):
//! bit monitoring, bit stuffing, frame (form) check, acknowledgment check
//! and cyclic redundancy check. [`CanErrorKind`] enumerates them; the rest
//! of this module holds the crate's fallible-constructor error types.

use core::fmt;
use std::error::Error;

use serde::{Deserialize, Serialize};

/// The five CAN error types.
///
/// MichiCAN's counterattack deliberately provokes [`Bit`](CanErrorKind::Bit)
/// and [`Stuff`](CanErrorKind::Stuff) errors in the attacker's transmission
/// (paper §IV-E); the simulator raises all five.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CanErrorKind {
    /// Bit monitoring: a transmitter read back a bus level different from
    /// the level it wrote (outside arbitration and the ACK slot).
    Bit,
    /// Bit stuffing: six consecutive bits of identical level inside the
    /// stuffed region of a frame.
    Stuff,
    /// Frame/form check: a fixed-form field (delimiter, EOF) held an
    /// illegal level.
    Form,
    /// Acknowledgment check: no receiver asserted a dominant ACK slot.
    Ack,
    /// Cyclic redundancy check mismatch.
    Crc,
}

impl CanErrorKind {
    /// All five error kinds.
    pub const ALL: [CanErrorKind; 5] = [
        CanErrorKind::Bit,
        CanErrorKind::Stuff,
        CanErrorKind::Form,
        CanErrorKind::Ack,
        CanErrorKind::Crc,
    ];
}

impl fmt::Display for CanErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CanErrorKind::Bit => "bit monitoring error",
            CanErrorKind::Stuff => "bit stuffing error",
            CanErrorKind::Form => "form error",
            CanErrorKind::Ack => "acknowledgment error",
            CanErrorKind::Crc => "CRC error",
        };
        f.write_str(name)
    }
}

/// An identifier outside the 11-bit CAN 2.0A range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InvalidId {
    /// The rejected raw value.
    pub raw: u16,
}

impl fmt::Display for InvalidId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "identifier 0x{:X} exceeds the 11-bit CAN 2.0A range (max 0x7FF)",
            self.raw
        )
    }
}

impl Error for InvalidId {}

/// A frame that violates CAN 2.0A structural constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvalidFrame {
    /// The payload exceeded 8 bytes.
    PayloadTooLong {
        /// The rejected payload length.
        len: usize,
    },
    /// The DLC exceeded 8.
    DlcTooLarge {
        /// The rejected DLC value.
        dlc: u8,
    },
    /// A remote frame carried a payload.
    RemoteFrameWithData,
}

impl fmt::Display for InvalidFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidFrame::PayloadTooLong { len } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the CAN 2.0A maximum of 8"
                )
            }
            InvalidFrame::DlcTooLarge { dlc } => {
                write!(f, "DLC {dlc} exceeds the CAN 2.0A maximum of 8")
            }
            InvalidFrame::RemoteFrameWithData => {
                f.write_str("remote frames must not carry a data payload")
            }
        }
    }
}

impl Error for InvalidFrame {}

/// A received bit stream that cannot be decoded into a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeError {
    /// Six consecutive equal levels inside the stuffed region.
    StuffViolation {
        /// Stuffed-stream bit index at which the sixth equal bit arrived.
        position: usize,
    },
    /// The computed CRC-15 did not match the received sequence.
    CrcMismatch {
        /// CRC computed over the received fields.
        computed: u16,
        /// CRC carried in the frame.
        received: u16,
    },
    /// A fixed-form bit held an illegal level.
    FormViolation {
        /// Unstuffed-stream bit index of the offending bit.
        position: usize,
        /// Human-readable field name.
        field: &'static str,
    },
    /// The stream ended before the frame was complete.
    Truncated,
    /// The IDE bit was recessive: extended (29-bit) frames are out of scope.
    ExtendedFrame,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::StuffViolation { position } => {
                write!(f, "stuff violation at stuffed bit {position}")
            }
            DecodeError::CrcMismatch { computed, received } => write!(
                f,
                "CRC mismatch: computed 0x{computed:04X}, received 0x{received:04X}"
            ),
            DecodeError::FormViolation { position, field } => {
                write!(f, "form violation in {field} at bit {position}")
            }
            DecodeError::Truncated => f.write_str("bit stream ended mid-frame"),
            DecodeError::ExtendedFrame => f.write_str("extended (29-bit) frames are not supported"),
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_kinds_are_five() {
        assert_eq!(CanErrorKind::ALL.len(), 5);
    }

    #[test]
    fn displays_are_lowercase_and_concise() {
        assert_eq!(CanErrorKind::Bit.to_string(), "bit monitoring error");
        assert_eq!(CanErrorKind::Stuff.to_string(), "bit stuffing error");
        let id_err = InvalidId { raw: 0x900 };
        assert!(id_err.to_string().contains("0x900"));
        let frame_err = InvalidFrame::PayloadTooLong { len: 9 };
        assert!(frame_err.to_string().contains('9'));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<InvalidId>();
        assert_error::<InvalidFrame>();
        assert_error::<DecodeError>();
    }

    #[test]
    fn decode_error_messages() {
        assert!(DecodeError::StuffViolation { position: 12 }
            .to_string()
            .contains("12"));
        assert!(DecodeError::CrcMismatch {
            computed: 0x1,
            received: 0x2
        }
        .to_string()
        .contains("0x0001"));
        assert!(DecodeError::Truncated.to_string().contains("mid-frame"));
    }
}

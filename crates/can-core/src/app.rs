//! The frame-level interface a classic CAN controller exposes to software.
//!
//! Applications on nodes A/B of the paper's hardware taxonomy (§II-C) can
//! only hand complete frames to the controller and receive complete frames
//! back — no bit-level access. [`Application`] captures that interface;
//! benign ECUs, restbus replayers and attackers all implement it.

use crate::frame::CanFrame;
use crate::time::BitInstant;

/// ECU application software talking to a CAN controller at frame
/// granularity.
///
/// The driving controller calls [`Application::poll`] once per bit time to
/// collect frames to enqueue for transmission, and the `on_*` callbacks as
/// bus events occur. Implementations should be cheap in `poll` — it runs at
/// bit rate.
pub trait Application {
    /// Polls for a frame to enqueue for transmission, if any.
    ///
    /// Returning `Some` repeatedly enqueues multiple frames; the controller
    /// buffers them and transmits in CAN priority order.
    fn poll(&mut self, now: BitInstant) -> Option<CanFrame>;

    /// The earliest bit time at or after `now` at which this application
    /// may return `Some` from [`Application::poll`], assuming no frames
    /// arrive in between.
    ///
    /// This is the application's half of the simulator's *quiescence
    /// contract*: if `next_activity(now)` returns `Some(t)` with `t > now`
    /// (or `None`, meaning "never"), then every `poll` in `[now, t)` must
    /// return `None` **without observable state change**, so the driver may
    /// skip those polls entirely. Implementations that cannot promise this
    /// keep the conservative default `Some(now)`, which disables
    /// skip-ahead around them.
    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        Some(now)
    }

    /// A complete, valid frame (sent by another node) was received.
    fn on_frame(&mut self, _frame: &CanFrame, _now: BitInstant) {}

    /// One of this node's own frames completed transmission successfully.
    fn on_transmit_success(&mut self, _frame: &CanFrame, _now: BitInstant) {}

    /// This node's controller entered bus-off.
    fn on_bus_off(&mut self, _now: BitInstant) {}

    /// This node's controller recovered from bus-off into error-active.
    fn on_recovered(&mut self, _now: BitInstant) {}
}

/// An application that never transmits and ignores all traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct SilentApplication;

impl Application for SilentApplication {
    fn poll(&mut self, _now: BitInstant) -> Option<CanFrame> {
        None
    }

    fn next_activity(&self, _now: BitInstant) -> Option<BitInstant> {
        None
    }
}

/// An application that transmits a fixed frame at a fixed period.
///
/// The first transmission is enqueued at `offset`; subsequent ones every
/// `period_bits`. This is the building block for restbus replay and for
/// the paper's "ECU configured to send CAN ID 0x173".
#[derive(Debug, Clone)]
pub struct PeriodicSender {
    frame: CanFrame,
    period_bits: u64,
    next_due: u64,
    sent: u64,
}

impl PeriodicSender {
    /// Creates a sender for `frame` every `period_bits`, first due at
    /// `offset_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `period_bits` is zero.
    pub fn new(frame: CanFrame, period_bits: u64, offset_bits: u64) -> Self {
        assert!(period_bits > 0, "period must be positive");
        PeriodicSender {
            frame,
            period_bits,
            next_due: offset_bits,
            sent: 0,
        }
    }

    /// The frame this sender transmits.
    pub fn frame(&self) -> &CanFrame {
        &self.frame
    }

    /// Number of frames enqueued so far.
    pub fn enqueued(&self) -> u64 {
        self.sent
    }
}

impl Application for PeriodicSender {
    fn poll(&mut self, now: BitInstant) -> Option<CanFrame> {
        if now.bits() >= self.next_due {
            self.next_due += self.period_bits;
            self.sent += 1;
            Some(self.frame)
        } else {
            None
        }
    }

    fn next_activity(&self, _now: BitInstant) -> Option<BitInstant> {
        Some(BitInstant::from_bits(self.next_due))
    }
}

/// An application that answers remote frames (RTR) for its identifier
/// with a data frame — the classic CAN request/response pattern.
#[derive(Debug, Clone)]
pub struct RemoteResponder {
    id: crate::id::CanId,
    payload: [u8; 8],
    dlc: usize,
    pending: u32,
    answered: u64,
}

impl RemoteResponder {
    /// Creates a responder serving `payload` for RTR requests on `id`.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds 8 bytes.
    pub fn new(id: crate::id::CanId, payload: &[u8]) -> Self {
        assert!(payload.len() <= 8, "payload too long");
        let mut data = [0u8; 8];
        data[..payload.len()].copy_from_slice(payload);
        RemoteResponder {
            id,
            payload: data,
            dlc: payload.len(),
            pending: 0,
            answered: 0,
        }
    }

    /// Requests answered so far.
    pub fn answered(&self) -> u64 {
        self.answered
    }
}

impl Application for RemoteResponder {
    fn poll(&mut self, _now: BitInstant) -> Option<CanFrame> {
        if self.pending > 0 {
            self.pending -= 1;
            self.answered += 1;
            Some(
                CanFrame::data_frame(self.id, &self.payload[..self.dlc])
                    .expect("validated payload"),
            )
        } else {
            None
        }
    }

    fn on_frame(&mut self, frame: &CanFrame, _now: BitInstant) {
        if frame.is_remote() && frame.id() == self.id {
            self.pending += 1;
        }
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        if self.pending > 0 {
            Some(now)
        } else {
            // Idle until the next remote request — which arrives via
            // `on_frame`, i.e. only on a non-quiescent bus.
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::CanId;

    fn frame() -> CanFrame {
        CanFrame::data_frame(CanId::from_raw(0x173), &[0xAA; 8]).unwrap()
    }

    #[test]
    fn silent_application_stays_silent() {
        let mut app = SilentApplication;
        for t in 0..100 {
            assert!(app.poll(BitInstant::from_bits(t)).is_none());
        }
    }

    #[test]
    fn periodic_sender_respects_offset_and_period() {
        let mut app = PeriodicSender::new(frame(), 100, 10);
        assert!(app.poll(BitInstant::from_bits(9)).is_none());
        assert!(app.poll(BitInstant::from_bits(10)).is_some());
        assert!(app.poll(BitInstant::from_bits(11)).is_none());
        assert!(app.poll(BitInstant::from_bits(109)).is_none());
        assert!(app.poll(BitInstant::from_bits(110)).is_some());
        assert_eq!(app.enqueued(), 2);
    }

    #[test]
    fn periodic_sender_catches_up_one_per_poll() {
        let mut app = PeriodicSender::new(frame(), 10, 0);
        // A large time jump releases backlogged frames one poll at a time.
        assert!(app.poll(BitInstant::from_bits(35)).is_some());
        assert!(app.poll(BitInstant::from_bits(35)).is_some());
        assert!(app.poll(BitInstant::from_bits(35)).is_some());
        assert!(app.poll(BitInstant::from_bits(35)).is_some());
        assert!(app.poll(BitInstant::from_bits(35)).is_none());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = PeriodicSender::new(frame(), 0, 0);
    }

    #[test]
    fn remote_responder_answers_requests() {
        use crate::id::CanId;
        let mut responder = RemoteResponder::new(CanId::from_raw(0x321), &[0xCA, 0xFE]);
        assert!(responder.poll(BitInstant::ZERO).is_none());
        let request = CanFrame::remote_frame(CanId::from_raw(0x321), 2).unwrap();
        responder.on_frame(&request, BitInstant::ZERO);
        let answer = responder.poll(BitInstant::from_bits(1)).unwrap();
        assert_eq!(answer.id().raw(), 0x321);
        assert_eq!(answer.data(), &[0xCA, 0xFE]);
        assert_eq!(responder.answered(), 1);
        assert!(responder.poll(BitInstant::from_bits(2)).is_none());
    }

    #[test]
    fn remote_responder_ignores_other_ids_and_data_frames() {
        use crate::id::CanId;
        let mut responder = RemoteResponder::new(CanId::from_raw(0x321), &[1]);
        let other_rtr = CanFrame::remote_frame(CanId::from_raw(0x322), 1).unwrap();
        let own_data = CanFrame::data_frame(CanId::from_raw(0x321), &[9]).unwrap();
        responder.on_frame(&other_rtr, BitInstant::ZERO);
        responder.on_frame(&own_data, BitInstant::ZERO);
        assert!(responder.poll(BitInstant::from_bits(1)).is_none());
    }

    #[test]
    fn application_is_object_safe() {
        let mut apps: Vec<Box<dyn Application>> = vec![
            Box::new(SilentApplication),
            Box::new(PeriodicSender::new(frame(), 5, 0)),
        ];
        let mut polled = 0;
        for app in &mut apps {
            if app.poll(BitInstant::ZERO).is_some() {
                polled += 1;
            }
        }
        assert_eq!(polled, 1);
    }
}

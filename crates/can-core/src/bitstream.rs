//! Wire-level form of CAN frames: field layout, bit stuffing and destuffing.
//!
//! CAN 2.0A transmits a data frame as (Fig. 1a of the paper):
//!
//! ```text
//! SOF | 11-bit ID | RTR | IDE | r0 | DLC(4) | DATA(0–64) | CRC-15 |
//! CRC delim | ACK slot | ACK delim | EOF(7)
//! ```
//!
//! Bit stuffing applies from the SOF through the end of the CRC sequence:
//! after five consecutive bits of equal level the transmitter inserts one
//! bit of the opposite level. Six consecutive equal levels inside that
//! region are therefore always a *stuff error* — the mechanism MichiCAN's
//! counterattack exploits.

use serde::{Deserialize, Serialize};

use crate::crc::Crc15;
use crate::errors::DecodeError;
use crate::frame::CanFrame;
use crate::id::CanId;
use crate::level::Level;

/// Run length after which a stuff bit is inserted.
pub const STUFF_RUN: usize = 5;

/// Number of recessive end-of-frame bits.
pub const EOF_BITS: usize = 7;

/// Number of recessive intermission (inter-frame space) bits after EOF.
pub const IFS_BITS: usize = 3;

/// Minimum number of recessive bits between two frames on an idle bus
/// (ACK delimiter + EOF + IFS), as stated in paper §II-A.
pub const MIN_INTERFRAME_RECESSIVE: usize = 1 + EOF_BITS + IFS_BITS;

/// The fields of a CAN 2.0A data frame, in wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameField {
    /// Start-of-frame bit (dominant).
    Sof,
    /// The 11-bit identifier.
    Id,
    /// Remote-transmission-request bit.
    Rtr,
    /// Identifier-extension bit (dominant for 2.0A).
    Ide,
    /// Reserved bit r0 (dominant).
    R0,
    /// 4-bit data length code.
    Dlc,
    /// 0–8 payload bytes.
    Data,
    /// 15-bit CRC sequence.
    Crc,
    /// CRC delimiter (recessive).
    CrcDelim,
    /// ACK slot (transmitter recessive; receivers assert dominant).
    AckSlot,
    /// ACK delimiter (recessive).
    AckDelim,
    /// 7 recessive end-of-frame bits.
    Eof,
}

impl FrameField {
    /// All fields in wire order.
    pub const ALL: [FrameField; 12] = [
        FrameField::Sof,
        FrameField::Id,
        FrameField::Rtr,
        FrameField::Ide,
        FrameField::R0,
        FrameField::Dlc,
        FrameField::Data,
        FrameField::Crc,
        FrameField::CrcDelim,
        FrameField::AckSlot,
        FrameField::AckDelim,
        FrameField::Eof,
    ];

    /// Human-readable field name as printed in Fig. 1a.
    pub const fn name(self) -> &'static str {
        match self {
            FrameField::Sof => "SOF",
            FrameField::Id => "CAN ID",
            FrameField::Rtr => "RTR",
            FrameField::Ide => "IDE",
            FrameField::R0 => "r0",
            FrameField::Dlc => "DLC",
            FrameField::Data => "Data",
            FrameField::Crc => "CRC-15",
            FrameField::CrcDelim => "CRC delimiter",
            FrameField::AckSlot => "ACK slot",
            FrameField::AckDelim => "ACK delimiter",
            FrameField::Eof => "EOF",
        }
    }
}

/// Field spans of a frame in *unstuffed* bit coordinates (half-open ranges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameLayout {
    data_bits: usize,
}

impl FrameLayout {
    /// Layout of a frame carrying `data_bytes` payload bytes (0 for remote
    /// frames).
    pub fn for_payload(data_bytes: usize) -> Self {
        assert!(data_bytes <= 8, "CAN 2.0A payload is at most 8 bytes");
        FrameLayout {
            data_bits: data_bytes * 8,
        }
    }

    /// Layout matching a specific frame.
    pub fn of(frame: &CanFrame) -> Self {
        Self::for_payload(if frame.is_remote() {
            0
        } else {
            frame.dlc() as usize
        })
    }

    /// The half-open unstuffed bit range occupied by `field`.
    pub fn span(&self, field: FrameField) -> core::ops::Range<usize> {
        let d = self.data_bits;
        match field {
            FrameField::Sof => 0..1,
            FrameField::Id => 1..12,
            FrameField::Rtr => 12..13,
            FrameField::Ide => 13..14,
            FrameField::R0 => 14..15,
            FrameField::Dlc => 15..19,
            FrameField::Data => 19..19 + d,
            FrameField::Crc => 19 + d..34 + d,
            FrameField::CrcDelim => 34 + d..35 + d,
            FrameField::AckSlot => 35 + d..36 + d,
            FrameField::AckDelim => 36 + d..37 + d,
            FrameField::Eof => 37 + d..44 + d,
        }
    }

    /// Which field the unstuffed bit at `index` belongs to, if any.
    pub fn field_at(&self, index: usize) -> Option<FrameField> {
        FrameField::ALL
            .iter()
            .copied()
            .find(|&f| self.span(f).contains(&index))
    }

    /// Total unstuffed frame length in bits (SOF through EOF).
    pub fn total_bits(&self) -> usize {
        self.span(FrameField::Eof).end
    }

    /// Unstuffed length of the stuffed region (SOF through CRC sequence).
    pub fn stuffed_region_bits(&self) -> usize {
        self.span(FrameField::Crc).end
    }
}

/// Produces the unstuffed bit sequence of a frame as the transmitter sends
/// it (ACK slot recessive).
///
/// The CRC is computed over SOF through the end of the data field.
pub fn unstuffed_bits(frame: &CanFrame) -> Vec<Level> {
    let layout = FrameLayout::of(frame);
    let mut bits = Vec::with_capacity(layout.total_bits());

    // SOF
    bits.push(Level::Dominant);
    // 11-bit identifier, MSB first
    bits.extend(frame.id().bits());
    // RTR
    bits.push(Level::from_bit(frame.is_remote()));
    // IDE (dominant = base format), r0 (dominant)
    bits.push(Level::Dominant);
    bits.push(Level::Dominant);
    // DLC, MSB first
    for i in (0..4).rev() {
        bits.push(Level::from_bit((frame.dlc() >> i) & 1 == 1));
    }
    // Data
    if !frame.is_remote() {
        for byte in frame.data() {
            for i in (0..8).rev() {
                bits.push(Level::from_bit((byte >> i) & 1 == 1));
            }
        }
    }
    // CRC over everything so far
    let mut crc = Crc15::new();
    crc.push_bits(&bits);
    let crc_value = crc.value();
    for i in (0..15).rev() {
        bits.push(Level::from_bit((crc_value >> i) & 1 == 1));
    }
    // CRC delimiter, ACK slot (transmitter sends recessive), ACK delimiter
    bits.push(Level::Recessive);
    bits.push(Level::Recessive);
    bits.push(Level::Recessive);
    // EOF
    bits.extend(std::iter::repeat_n(Level::Recessive, EOF_BITS));

    debug_assert_eq!(bits.len(), layout.total_bits());
    bits
}

/// A frame serialized to the wire, with stuff bits inserted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// The stuffed bit sequence (SOF through EOF) as driven by the
    /// transmitter.
    pub bits: Vec<Level>,
    /// Indices into [`WireFrame::bits`] that are stuff bits.
    pub stuff_positions: Vec<usize>,
    /// Length of the stuffed region (SOF through CRC, after stuffing).
    pub stuffed_region_len: usize,
}

impl WireFrame {
    /// Number of stuff bits inserted.
    pub fn stuff_count(&self) -> usize {
        self.stuff_positions.len()
    }

    /// Wire length including the 3-bit intermission that must follow.
    pub fn bits_on_bus_with_ifs(&self) -> usize {
        self.bits.len() + IFS_BITS
    }
}

/// Serializes a frame to the wire, applying bit stuffing to the region from
/// SOF through the CRC sequence.
///
/// ```
/// use can_core::bitstream::stuff_frame;
/// use can_core::{CanFrame, CanId};
///
/// // ID 0x000 starts with SOF + 11 dominant bits: stuffing must kick in.
/// let frame = CanFrame::data_frame(CanId::from_raw(0), &[]).unwrap();
/// let wire = stuff_frame(&frame);
/// assert!(wire.stuff_count() >= 2);
/// ```
pub fn stuff_frame(frame: &CanFrame) -> WireFrame {
    let raw = unstuffed_bits(frame);
    let layout = FrameLayout::of(frame);
    let stuffed_end = layout.stuffed_region_bits();

    let mut stuffer = Stuffer::new();
    let mut bits = Vec::with_capacity(raw.len() + raw.len() / STUFF_RUN);
    let mut stuff_positions = Vec::new();

    for &bit in &raw[..stuffed_end] {
        bits.push(bit);
        if let Some(stuff) = stuffer.push(bit) {
            stuff_positions.push(bits.len());
            bits.push(stuff);
        }
    }
    let stuffed_region_len = bits.len();
    bits.extend_from_slice(&raw[stuffed_end..]);

    WireFrame {
        bits,
        stuff_positions,
        stuffed_region_len,
    }
}

/// Streaming bit-stuffing encoder.
///
/// Feed each payload bit with [`Stuffer::push`]; when it returns
/// `Some(level)`, the transmitter must insert that stuff bit before the next
/// payload bit.
#[derive(Debug, Clone, Default)]
pub struct Stuffer {
    run_level: Option<Level>,
    run_len: usize,
}

impl Stuffer {
    /// Creates an encoder with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one payload bit; returns the stuff bit to insert, if any.
    pub fn push(&mut self, bit: Level) -> Option<Level> {
        match self.run_level {
            Some(level) if level == bit => self.run_len += 1,
            _ => {
                self.run_level = Some(bit);
                self.run_len = 1;
            }
        }
        if self.run_len == STUFF_RUN {
            let stuff = bit.opposite();
            // The stuff bit participates in subsequent run counting.
            self.run_level = Some(stuff);
            self.run_len = 1;
            Some(stuff)
        } else {
            None
        }
    }

    /// Resets the run history (e.g. at a new SOF).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Outcome of feeding one wire bit to a [`Destuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destuffed {
    /// A payload bit with the given level.
    Bit(Level),
    /// A stuff bit; discard before interpreting fields.
    StuffBit,
    /// Six consecutive equal levels: a stuff error.
    Violation,
}

/// Streaming bit-destuffing decoder with stuff-error detection.
///
/// Mirrors the behaviour of a receiving CAN controller over the stuffed
/// region of a frame, and of MichiCAN's Algorithm 1 lines 6–15.
#[derive(Debug, Clone, Default)]
pub struct Destuffer {
    run_level: Option<Level>,
    run_len: usize,
    expect_stuff: bool,
}

impl Destuffer {
    /// Creates a decoder with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one wire bit.
    pub fn push(&mut self, bit: Level) -> Destuffed {
        if self.expect_stuff {
            self.expect_stuff = false;
            let prev = self.run_level.expect("stuff expectation implies history");
            if bit == prev {
                // Sixth equal bit: stuff error.
                self.run_level = Some(bit);
                self.run_len += 1;
                return Destuffed::Violation;
            }
            self.run_level = Some(bit);
            self.run_len = 1;
            return Destuffed::StuffBit;
        }

        match self.run_level {
            Some(level) if level == bit => self.run_len += 1,
            _ => {
                self.run_level = Some(bit);
                self.run_len = 1;
            }
        }
        if self.run_len == STUFF_RUN {
            self.expect_stuff = true;
        }
        Destuffed::Bit(bit)
    }

    /// Resets the run history (e.g. at a new SOF).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Whether the next wire bit is expected to be a stuff bit.
    pub fn expecting_stuff(&self) -> bool {
        self.expect_stuff
    }
}

/// Decodes a complete *stuffed* wire bit sequence back into a frame,
/// verifying stuffing, CRC and fixed-form fields.
///
/// The sequence must start at the SOF. The ACK slot may be either level
/// (receivers assert it dominant on a live bus).
///
/// # Errors
///
/// Returns a [`DecodeError`] describing the first protocol violation.
pub fn decode_frame(wire: &[Level]) -> Result<CanFrame, DecodeError> {
    // First destuff enough of the stream to know the DLC, then the rest.
    let mut destuffer = Destuffer::new();
    let mut unstuffed = Vec::with_capacity(wire.len());
    let mut wire_iter = wire.iter().copied().enumerate();

    // Helper: pull destuffed bits until `unstuffed` reaches `target` length.
    let mut fill_to = |target: usize,
                       unstuffed: &mut Vec<Level>,
                       destuffer: &mut Destuffer|
     -> Result<(), DecodeError> {
        while unstuffed.len() < target {
            let (pos, bit) = wire_iter.next().ok_or(DecodeError::Truncated)?;
            match destuffer.push(bit) {
                Destuffed::Bit(b) => unstuffed.push(b),
                Destuffed::StuffBit => {}
                Destuffed::Violation => return Err(DecodeError::StuffViolation { position: pos }),
            }
        }
        Ok(())
    };

    // SOF + ID + RTR + IDE + r0 + DLC = 19 unstuffed bits.
    fill_to(19, &mut unstuffed, &mut destuffer)?;
    if unstuffed[0].is_recessive() {
        return Err(DecodeError::FormViolation {
            position: 0,
            field: "SOF",
        });
    }
    if unstuffed[13].is_recessive() {
        return Err(DecodeError::ExtendedFrame);
    }
    let id_raw = unstuffed[1..12]
        .iter()
        .fold(0u16, |acc, l| (acc << 1) | l.to_bit() as u16);
    let id = CanId::new(id_raw).expect("11 bits always fit");
    let rtr = unstuffed[12].to_bit();
    let dlc_raw = unstuffed[15..19]
        .iter()
        .fold(0u8, |acc, l| (acc << 1) | l.to_bit() as u8);
    // DLC values 9..15 mean 8 data bytes per ISO 11898-1.
    let data_bytes = if rtr { 0 } else { dlc_raw.min(8) as usize };

    let layout = FrameLayout::for_payload(data_bytes);
    // Destuff through the CRC sequence.
    fill_to(layout.stuffed_region_bits(), &mut unstuffed, &mut destuffer)?;
    // A run of five ending exactly at the last CRC bit still forces one
    // final stuff bit on the wire, transmitted before the CRC delimiter.
    if destuffer.expecting_stuff() {
        let (pos, bit) = wire_iter.next().ok_or(DecodeError::Truncated)?;
        if let Destuffed::Violation = destuffer.push(bit) {
            return Err(DecodeError::StuffViolation { position: pos });
        }
    }

    // The remaining fields are not stuffed.
    let tail_len = layout.total_bits() - layout.stuffed_region_bits();
    let mut tail = Vec::with_capacity(tail_len);
    for _ in 0..tail_len {
        let (_, bit) = wire_iter.next().ok_or(DecodeError::Truncated)?;
        tail.push(bit);
    }

    // CRC check.
    let crc_span = layout.span(FrameField::Crc);
    let mut crc = Crc15::new();
    crc.push_bits(&unstuffed[..crc_span.start]);
    let computed = crc.value();
    let received = unstuffed[crc_span.clone()]
        .iter()
        .fold(0u16, |acc, l| (acc << 1) | l.to_bit() as u16);
    if computed != received {
        return Err(DecodeError::CrcMismatch { computed, received });
    }

    // Form checks on the unstuffed tail: CRC delim, ACK delim, EOF must be
    // recessive. (ACK slot may be either.)
    let tail_base = layout.stuffed_region_bits();
    for (offset, field) in [(0usize, "CRC delimiter"), (2, "ACK delimiter")] {
        if tail[offset].is_dominant() {
            return Err(DecodeError::FormViolation {
                position: tail_base + offset,
                field,
            });
        }
    }
    for i in 0..EOF_BITS {
        // A dominant level at the very last EOF bit is tolerated by
        // receivers (it signals an overload condition, not an error).
        if tail[3 + i].is_dominant() && i != EOF_BITS - 1 {
            return Err(DecodeError::FormViolation {
                position: tail_base + 3 + i,
                field: "EOF",
            });
        }
    }

    // Reassemble the payload.
    let data_span = layout.span(FrameField::Data);
    let mut data = [0u8; 8];
    for (i, chunk) in unstuffed[data_span].chunks(8).enumerate() {
        data[i] = chunk
            .iter()
            .fold(0u8, |acc, l| (acc << 1) | l.to_bit() as u8);
    }

    if rtr {
        Ok(CanFrame::remote_frame(id, dlc_raw.min(8)).expect("validated DLC"))
    } else {
        Ok(CanFrame::data_frame(id, &data[..data_bytes]).expect("validated payload"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::CanFrame;

    fn id(raw: u16) -> CanId {
        CanId::from_raw(raw)
    }

    #[test]
    fn layout_spans_are_contiguous() {
        for payload in 0..=8usize {
            let layout = FrameLayout::for_payload(payload);
            let mut expected_start = 0;
            for field in FrameField::ALL {
                let span = layout.span(field);
                assert_eq!(span.start, expected_start, "{field:?} with {payload} bytes");
                expected_start = span.end;
            }
            assert_eq!(layout.total_bits(), 44 + payload * 8);
        }
    }

    #[test]
    fn field_at_boundaries() {
        let layout = FrameLayout::for_payload(8);
        assert_eq!(layout.field_at(0), Some(FrameField::Sof));
        assert_eq!(layout.field_at(1), Some(FrameField::Id));
        assert_eq!(layout.field_at(11), Some(FrameField::Id));
        assert_eq!(layout.field_at(12), Some(FrameField::Rtr));
        assert_eq!(layout.field_at(19), Some(FrameField::Data));
        assert_eq!(
            layout.field_at(layout.total_bits() - 1),
            Some(FrameField::Eof)
        );
        assert_eq!(layout.field_at(layout.total_bits()), None);
    }

    #[test]
    fn zero_payload_data_field_is_empty() {
        let layout = FrameLayout::for_payload(0);
        assert!(layout.span(FrameField::Data).is_empty());
        assert_eq!(layout.field_at(19), Some(FrameField::Crc));
    }

    #[test]
    fn stuffer_inserts_after_five() {
        let mut stuffer = Stuffer::new();
        for _ in 0..4 {
            assert_eq!(stuffer.push(Level::Dominant), None);
        }
        assert_eq!(stuffer.push(Level::Dominant), Some(Level::Recessive));
    }

    #[test]
    fn stuff_bit_participates_in_next_run() {
        let mut stuffer = Stuffer::new();
        for _ in 0..4 {
            assert_eq!(stuffer.push(Level::Dominant), None);
        }
        // 5th dominant inserts a recessive stuff bit.
        assert_eq!(stuffer.push(Level::Dominant), Some(Level::Recessive));
        // Now four more recessive payload bits complete a run of five
        // (stuff bit + 4) and trigger another stuff bit.
        for _ in 0..3 {
            assert_eq!(stuffer.push(Level::Recessive), None);
        }
        assert_eq!(stuffer.push(Level::Recessive), Some(Level::Dominant));
    }

    #[test]
    fn destuffer_round_trips_stuffer() {
        // Alternating and run-heavy patterns.
        let patterns: Vec<Vec<Level>> = vec![
            vec![Level::Dominant; 20],
            vec![Level::Recessive; 20],
            (0..40).map(|i| Level::from_bit(i % 2 == 0)).collect(),
            (0..40).map(|i| Level::from_bit(i % 7 < 3)).collect(),
        ];
        for payload in patterns {
            let mut stuffer = Stuffer::new();
            let mut wire = Vec::new();
            for &bit in &payload {
                wire.push(bit);
                if let Some(s) = stuffer.push(bit) {
                    wire.push(s);
                }
            }
            let mut destuffer = Destuffer::new();
            let mut recovered = Vec::new();
            for &bit in &wire {
                match destuffer.push(bit) {
                    Destuffed::Bit(b) => recovered.push(b),
                    Destuffed::StuffBit => {}
                    Destuffed::Violation => panic!("round trip must not violate"),
                }
            }
            assert_eq!(recovered, payload);
        }
    }

    #[test]
    fn destuffer_flags_six_equal_bits() {
        let mut destuffer = Destuffer::new();
        for _ in 0..5 {
            assert!(matches!(destuffer.push(Level::Dominant), Destuffed::Bit(_)));
        }
        assert!(destuffer.expecting_stuff());
        assert_eq!(destuffer.push(Level::Dominant), Destuffed::Violation);
    }

    #[test]
    fn wire_frame_has_expected_structure() {
        let frame = CanFrame::data_frame(id(0x173), &[0x11, 0x22, 0x33]).unwrap();
        let wire = stuff_frame(&frame);
        assert_eq!(wire.bits[0], Level::Dominant, "SOF");
        let unstuffed_len = FrameLayout::of(&frame).total_bits();
        assert_eq!(wire.bits.len(), unstuffed_len + wire.stuff_count());
        // EOF tail is recessive.
        for &bit in &wire.bits[wire.bits.len() - EOF_BITS..] {
            assert_eq!(bit, Level::Recessive);
        }
    }

    #[test]
    fn all_zero_id_produces_stuffing() {
        // SOF + ID 0x000 is 12 consecutive dominant bits: stuff bits at
        // positions 5 and 11 of the wire (after each run of five).
        let frame = CanFrame::data_frame(id(0), &[]).unwrap();
        let wire = stuff_frame(&frame);
        assert_eq!(wire.stuff_positions[0], 5);
        assert_eq!(wire.bits[5], Level::Recessive);
    }

    #[test]
    fn no_six_equal_in_stuffed_region() {
        // Property sampled over a spread of IDs/payloads: the stuffed
        // region never contains six consecutive equal levels.
        for raw in (0..=0x7FF).step_by(37) {
            let payload = [(raw & 0xFF) as u8; 4];
            let frame = CanFrame::data_frame(id(raw), &payload).unwrap();
            let wire = stuff_frame(&frame);
            let region = &wire.bits[..wire.stuffed_region_len];
            let max_run = region.windows(6).all(|w| !(w.iter().all(|&b| b == w[0])));
            assert!(
                max_run,
                "id {raw:#x} produced 6 equal bits in stuffed region"
            );
        }
    }

    #[test]
    fn decode_round_trips_all_dlcs() {
        for dlc in 0..=8usize {
            let payload: Vec<u8> = (0..dlc).map(|i| (i * 31 + 7) as u8).collect();
            let frame = CanFrame::data_frame(id(0x400 + dlc as u16), &payload).unwrap();
            let wire = stuff_frame(&frame);
            let decoded = decode_frame(&wire.bits).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn decode_round_trips_remote_frame() {
        let frame = CanFrame::remote_frame(id(0x123), 0).unwrap();
        let wire = stuff_frame(&frame);
        assert_eq!(decode_frame(&wire.bits).unwrap(), frame);
    }

    #[test]
    fn decode_accepts_dominant_ack_slot() {
        let frame = CanFrame::data_frame(id(0x321), &[5, 6]).unwrap();
        let mut wire = stuff_frame(&frame);
        let layout = FrameLayout::of(&frame);
        // On a live bus receivers assert the ACK slot dominant. The slot is
        // in the unstuffed tail, offset by the number of stuff bits.
        let ack_index = layout.span(FrameField::AckSlot).start + wire.stuff_count();
        wire.bits[ack_index] = Level::Dominant;
        assert_eq!(decode_frame(&wire.bits).unwrap(), frame);
    }

    #[test]
    fn decode_rejects_corrupted_crc() {
        let frame = CanFrame::data_frame(id(0x222), &[1, 2, 3, 4]).unwrap();
        let mut wire = stuff_frame(&frame);
        // Flip a data bit well inside the stuffed region. Flipping may break
        // stuffing instead of the CRC; accept either rejection.
        wire.bits[25] = wire.bits[25].opposite();
        let err = decode_frame(&wire.bits).unwrap_err();
        assert!(
            matches!(
                err,
                DecodeError::CrcMismatch { .. } | DecodeError::StuffViolation { .. }
            ),
            "corruption must be detected, got {err:?}"
        );
    }

    #[test]
    fn decode_rejects_truncated_stream() {
        let frame = CanFrame::data_frame(id(0x100), &[9; 8]).unwrap();
        let wire = stuff_frame(&frame);
        let err = decode_frame(&wire.bits[..30]).unwrap_err();
        assert_eq!(err, DecodeError::Truncated);
    }

    #[test]
    fn decode_rejects_extended_frames() {
        let frame = CanFrame::data_frame(id(0x155), &[]).unwrap();
        let mut wire = stuff_frame(&frame);
        // 0x155 alternates bits, so no stuff bits occur before the IDE bit
        // at unstuffed index 13.
        assert!(wire.stuff_positions.iter().all(|&p| p > 13));
        wire.bits[13] = Level::Recessive; // IDE = 1 ⇒ extended format
        assert_eq!(
            decode_frame(&wire.bits).unwrap_err(),
            DecodeError::ExtendedFrame
        );
    }

    #[test]
    fn average_frame_size_matches_paper() {
        // Paper: "an average CAN frame consists of 125 bits" including
        // stuff bits and intermission. An 8-byte frame is 108 unstuffed
        // bits; with typical stuffing + 3-bit IFS this lands near 115–125.
        let frame = CanFrame::data_frame(id(0x3A5), &[0xA5; 8]).unwrap();
        let wire = stuff_frame(&frame);
        let with_ifs = wire.bits_on_bus_with_ifs();
        assert!(
            (108 + 3..=133).contains(&with_ifs),
            "8-byte frame on the bus was {with_ifs} bits"
        );
    }

    #[test]
    fn field_names_cover_fig_1a() {
        let names: Vec<&str> = FrameField::ALL.iter().map(|f| f.name()).collect();
        assert!(names.contains(&"SOF"));
        assert!(names.contains(&"CAN ID"));
        assert!(names.contains(&"CRC-15"));
        assert!(names.contains(&"EOF"));
    }
}

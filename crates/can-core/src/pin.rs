//! GPIO-shaped pin abstractions.
//!
//! On an MCU with an integrated CAN controller, the PIO controller can
//! multiplex the `CAN_RX`/`CAN_TX` system pins onto general-purpose I/O
//! (paper §IV-B, Fig. 4a), giving software direct read/write access to every
//! bit on the bus. These traits model exactly that capability — nothing
//! more — so that defense logic written against them would compile
//! unchanged against memory-mapped registers on real hardware.

use crate::level::Level;

/// Read access to the `CAN_RX` line.
pub trait RxPin {
    /// Samples the current bus level.
    fn read(&self) -> Level;
}

/// Multiplexable write access to the `CAN_TX` line.
///
/// While unmultiplexed (the default), the pin contributes nothing to the
/// bus. MichiCAN enables multiplexing only for the duration of a
/// counterattack and releases it immediately afterwards: holding the bus
/// dominant would destroy all traffic, and holding it recessive would
/// prevent the node's own controller from acknowledging frames (§IV-B).
pub trait TxPin {
    /// Routes the pin to the GPIO function so that [`TxPin::write`] takes
    /// effect.
    fn enable_multiplexing(&mut self);

    /// Returns the pin to the CAN-controller function; the GPIO level no
    /// longer reaches the bus.
    fn disable_multiplexing(&mut self);

    /// Whether the pin is currently multiplexed to GPIO.
    fn is_multiplexed(&self) -> bool;

    /// Drives the pin while multiplexed. Has no effect otherwise.
    fn write(&mut self, level: Level);
}

/// An in-memory [`TxPin`] implementation used by simulators and tests.
///
/// The effective bus contribution is [`SoftTxPin::bus_contribution`]:
/// recessive unless multiplexed *and* driven dominant.
#[derive(Debug, Clone, Default)]
pub struct SoftTxPin {
    multiplexed: bool,
    level: Level,
}

impl SoftTxPin {
    /// Creates an unmultiplexed pin (recessive contribution).
    pub fn new() -> Self {
        SoftTxPin {
            multiplexed: false,
            level: Level::Recessive,
        }
    }

    /// The level this pin currently contributes to the wired-AND bus.
    pub fn bus_contribution(&self) -> Level {
        if self.multiplexed {
            self.level
        } else {
            Level::Recessive
        }
    }
}

impl TxPin for SoftTxPin {
    fn enable_multiplexing(&mut self) {
        self.multiplexed = true;
    }

    fn disable_multiplexing(&mut self) {
        self.multiplexed = false;
        // Defensive: a released pin must never keep pulling the bus low.
        self.level = Level::Recessive;
    }

    fn is_multiplexed(&self) -> bool {
        self.multiplexed
    }

    fn write(&mut self, level: Level) {
        if self.multiplexed {
            self.level = level;
        }
    }
}

/// An in-memory [`RxPin`] holding the most recent bus sample.
#[derive(Debug, Clone, Default)]
pub struct SoftRxPin {
    level: Level,
}

impl SoftRxPin {
    /// Creates a pin reading recessive (idle bus).
    pub fn new() -> Self {
        SoftRxPin {
            level: Level::Recessive,
        }
    }

    /// Updates the sample (called by the bus model each bit time).
    pub fn set(&mut self, level: Level) {
        self.level = level;
    }
}

impl RxPin for SoftRxPin {
    fn read(&self) -> Level {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmultiplexed_pin_contributes_recessive() {
        let mut pin = SoftTxPin::new();
        pin.write(Level::Dominant); // ignored: not multiplexed
        assert_eq!(pin.bus_contribution(), Level::Recessive);
    }

    #[test]
    fn multiplexed_pin_drives_the_bus() {
        let mut pin = SoftTxPin::new();
        pin.enable_multiplexing();
        pin.write(Level::Dominant);
        assert_eq!(pin.bus_contribution(), Level::Dominant);
    }

    #[test]
    fn disabling_multiplexing_releases_the_bus() {
        let mut pin = SoftTxPin::new();
        pin.enable_multiplexing();
        pin.write(Level::Dominant);
        pin.disable_multiplexing();
        assert_eq!(pin.bus_contribution(), Level::Recessive);
        // Re-enabling must not resurrect the old dominant level.
        pin.enable_multiplexing();
        assert_eq!(pin.bus_contribution(), Level::Recessive);
    }

    #[test]
    fn is_multiplexed_tracks_state() {
        let mut pin = SoftTxPin::new();
        assert!(!pin.is_multiplexed());
        pin.enable_multiplexing();
        assert!(pin.is_multiplexed());
        pin.disable_multiplexing();
        assert!(!pin.is_multiplexed());
    }

    #[test]
    fn rx_pin_reflects_last_sample() {
        let mut pin = SoftRxPin::new();
        assert_eq!(pin.read(), Level::Recessive);
        pin.set(Level::Dominant);
        assert_eq!(pin.read(), Level::Dominant);
    }
}

//! Bit-time arithmetic.
//!
//! Everything in the paper's evaluation is expressed in *bits* and converted
//! to wall-clock time by multiplying with the nominal bit time of the bus
//! (e.g. 20 µs at 50 kbit/s). These newtypes keep the two domains apart and
//! make the conversion explicit.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, counted in nominal bit times since simulation
/// start.
///
/// ```
/// use can_core::{BitDuration, BitInstant};
/// let t0 = BitInstant::ZERO;
/// let t1 = t0 + BitDuration::bits(35);
/// assert_eq!(t1.elapsed_since(t0), BitDuration::bits(35));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct BitInstant(u64);

impl BitInstant {
    /// The origin of simulated time.
    pub const ZERO: BitInstant = BitInstant(0);

    /// Creates an instant at `bits` nominal bit times after the origin.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        BitInstant(bits)
    }

    /// The number of bit times elapsed since the origin.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn elapsed_since(self, earlier: BitInstant) -> BitDuration {
        BitDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }

    /// Converts this instant to microseconds on a bus of the given speed.
    #[inline]
    pub fn as_micros(self, speed: BusSpeed) -> f64 {
        self.0 as f64 * speed.bit_time_us()
    }
}

impl Add<BitDuration> for BitInstant {
    type Output = BitInstant;

    #[inline]
    fn add(self, rhs: BitDuration) -> BitInstant {
        BitInstant(self.0 + rhs.0)
    }
}

impl AddAssign<BitDuration> for BitInstant {
    #[inline]
    fn add_assign(&mut self, rhs: BitDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for BitInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bits", self.0)
    }
}

/// A span of simulated time, counted in nominal bit times.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct BitDuration(u64);

impl BitDuration {
    /// A zero-length duration.
    pub const ZERO: BitDuration = BitDuration(0);

    /// Creates a duration of `bits` nominal bit times.
    #[inline]
    pub const fn bits(bits: u64) -> Self {
        BitDuration(bits)
    }

    /// The duration length in bit times.
    #[inline]
    pub const fn as_bits(self) -> u64 {
        self.0
    }

    /// Converts this duration to milliseconds on a bus of the given speed.
    ///
    /// ```
    /// use can_core::{BitDuration, BusSpeed};
    /// // The paper's 1248-bit worst-case bus-off time is 24.96 ms at 50 kbit/s.
    /// let d = BitDuration::bits(1248);
    /// assert!((d.as_millis(BusSpeed::K50) - 24.96).abs() < 1e-9);
    /// ```
    #[inline]
    pub fn as_millis(self, speed: BusSpeed) -> f64 {
        self.0 as f64 * speed.bit_time_us() / 1000.0
    }

    /// Converts this duration to microseconds on a bus of the given speed.
    #[inline]
    pub fn as_micros(self, speed: BusSpeed) -> f64 {
        self.0 as f64 * speed.bit_time_us()
    }
}

impl Add for BitDuration {
    type Output = BitDuration;

    #[inline]
    fn add(self, rhs: BitDuration) -> BitDuration {
        BitDuration(self.0 + rhs.0)
    }
}

impl AddAssign for BitDuration {
    #[inline]
    fn add_assign(&mut self, rhs: BitDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for BitDuration {
    type Output = BitDuration;

    #[inline]
    fn sub(self, rhs: BitDuration) -> BitDuration {
        BitDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for BitDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bits", self.0)
    }
}

/// Nominal CAN bus speeds used throughout the paper.
///
/// All ECUs on a bus share the same speed, fixed by the OEM at production
/// time (paper §V-A). The nominal bit time is the reciprocal of the speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusSpeed {
    /// 50 kbit/s — the speed of the paper's Arduino Due online evaluation.
    K50,
    /// 125 kbit/s — upper bound for reliable MichiCAN on the Arduino Due.
    K125,
    /// 250 kbit/s.
    K250,
    /// 500 kbit/s — typical powertrain bus; NXP S32K144 evaluation speed.
    K500,
    /// 1 Mbit/s — the CAN 2.0 maximum.
    M1,
}

impl BusSpeed {
    /// All supported speeds, slowest first.
    pub const ALL: [BusSpeed; 5] = [
        BusSpeed::K50,
        BusSpeed::K125,
        BusSpeed::K250,
        BusSpeed::K500,
        BusSpeed::M1,
    ];

    /// The bus speed in bits per second.
    ///
    /// ```
    /// use can_core::BusSpeed;
    /// assert_eq!(BusSpeed::K500.bits_per_second(), 500_000);
    /// ```
    #[inline]
    pub const fn bits_per_second(self) -> u64 {
        match self {
            BusSpeed::K50 => 50_000,
            BusSpeed::K125 => 125_000,
            BusSpeed::K250 => 250_000,
            BusSpeed::K500 => 500_000,
            BusSpeed::M1 => 1_000_000,
        }
    }

    /// The nominal bit time in microseconds.
    ///
    /// ```
    /// use can_core::BusSpeed;
    /// assert_eq!(BusSpeed::K500.bit_time_us(), 2.0);
    /// assert_eq!(BusSpeed::K50.bit_time_us(), 20.0);
    /// ```
    #[inline]
    pub fn bit_time_us(self) -> f64 {
        1e6 / self.bits_per_second() as f64
    }

    /// The nominal bit time in nanoseconds.
    #[inline]
    pub fn bit_time_ns(self) -> f64 {
        1e9 / self.bits_per_second() as f64
    }

    /// Number of whole bit times in the given number of milliseconds.
    ///
    /// Useful for converting message periods (expressed in ms in
    /// communication matrices) into simulator ticks.
    ///
    /// ```
    /// use can_core::BusSpeed;
    /// assert_eq!(BusSpeed::K50.bits_in_millis(10.0), 500);
    /// ```
    #[inline]
    pub fn bits_in_millis(self, millis: f64) -> u64 {
        (millis * self.bits_per_second() as f64 / 1000.0).round() as u64
    }
}

impl fmt::Display for BusSpeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusSpeed::K50 => f.write_str("50 kbit/s"),
            BusSpeed::K125 => f.write_str("125 kbit/s"),
            BusSpeed::K250 => f.write_str("250 kbit/s"),
            BusSpeed::K500 => f.write_str("500 kbit/s"),
            BusSpeed::M1 => f.write_str("1 Mbit/s"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic() {
        let t = BitInstant::from_bits(100);
        let t2 = t + BitDuration::bits(25);
        assert_eq!(t2.bits(), 125);
        assert_eq!(t2.elapsed_since(t), BitDuration::bits(25));
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be later")]
    fn elapsed_since_panics_when_reversed() {
        let _ = BitInstant::from_bits(5).elapsed_since(BitInstant::from_bits(6));
    }

    #[test]
    fn bit_time_values() {
        assert_eq!(BusSpeed::K50.bit_time_us(), 20.0);
        assert_eq!(BusSpeed::K125.bit_time_us(), 8.0);
        assert_eq!(BusSpeed::K250.bit_time_us(), 4.0);
        assert_eq!(BusSpeed::K500.bit_time_us(), 2.0);
        assert_eq!(BusSpeed::M1.bit_time_us(), 1.0);
    }

    #[test]
    fn paper_average_frame_blocking_time() {
        // Paper §IV-A: a 125-bit average frame at 500 kbit/s blocks for 250 µs.
        let d = BitDuration::bits(125);
        assert!((d.as_micros(BusSpeed::K500) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn fifty_kbit_frame_time() {
        // Paper §V-E: one CAN message at 50 kbit/s is transmitted within 2.5 ms.
        let d = BitDuration::bits(125);
        assert!((d.as_millis(BusSpeed::K50) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn bits_in_millis_round_trips() {
        assert_eq!(BusSpeed::K500.bits_in_millis(10.0), 5000);
        assert_eq!(BusSpeed::M1.bits_in_millis(0.125), 125);
    }

    #[test]
    fn duration_saturating_sub() {
        let a = BitDuration::bits(3);
        let b = BitDuration::bits(10);
        assert_eq!(a - b, BitDuration::ZERO);
        assert_eq!(b - a, BitDuration::bits(7));
    }

    #[test]
    fn add_assign_on_instant() {
        let mut t = BitInstant::ZERO;
        t += BitDuration::bits(11);
        assert_eq!(t.bits(), 11);
    }

    #[test]
    fn display_formats() {
        assert_eq!(BusSpeed::K50.to_string(), "50 kbit/s");
        assert_eq!(BitInstant::from_bits(7).to_string(), "7 bits");
        assert_eq!(BitDuration::bits(7).to_string(), "7 bits");
    }
}

//! Bit-level bus access for software-defined defenses.
//!
//! An integrated CAN controller with pin multiplexing gives software two —
//! and only two — low-level capabilities (paper §IV-B):
//!
//! 1. sample the `CAN_RX` line once per nominal bit time, and
//! 2. drive the `CAN_TX` line while multiplexing is enabled.
//!
//! [`BitAgent`] captures exactly this contract. `michican` and other
//! defenses implement it; the simulator (or, on hardware, a timer
//! interrupt) calls it. The defense never sees frames, nodes or the
//! simulator — only bits, like real firmware.

use crate::level::Level;
use crate::time::BitInstant;

/// A software component with per-bit access to the bus, as granted by a
/// pin-multiplexed integrated CAN controller.
///
/// The driver (simulator or ISR) calls [`BitAgent::on_bit`] once per
/// nominal bit time with the sampled bus level, then reads
/// [`BitAgent::tx_level`] for the level to contribute to the *next* bit
/// time. Returning `None` models an unmultiplexed `CAN_TX` pin (no
/// contribution); `Some(level)` models a multiplexed, driven pin.
///
/// The one-bit delay between a sample and the earliest possible reaction is
/// physical: controllers sample at ~70 % of the bit time, so a level change
/// decided at the sample point is only observed by other nodes from the
/// following bit onwards (§IV-C).
pub trait BitAgent {
    /// Processes the bus level sampled in the current bit time.
    fn on_bit(&mut self, level: Level, now: BitInstant);

    /// The level this agent drives during the next bit time, or `None` when
    /// its `CAN_TX` pin is not multiplexed.
    fn tx_level(&self) -> Option<Level>;

    /// Informs the agent whether its own node's controller is currently
    /// transmitting a frame.
    ///
    /// A distributed defense must not counterattack its own transmissions;
    /// on hardware this is known from the controller's TX-mailbox status.
    /// The default implementation ignores the hint.
    fn set_own_transmission(&mut self, _transmitting: bool) {}

    /// The earliest bit time at or after `now` at which this agent may
    /// drive the bus or needs per-bit processing, assuming the bus stays
    /// recessive until then.
    ///
    /// Part of the simulator's *quiescence contract*: returning `Some(t)`
    /// with `t > now` (or `None`, "never") promises that for every bit in
    /// `[now, t)` the agent drives nothing (`tx_level() == None` or
    /// recessive) and that feeding it that many recessive samples is
    /// exactly reproduced by [`BitAgent::skip_idle`]. The conservative
    /// default `Some(now)` disables skip-ahead around this agent.
    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        Some(now)
    }

    /// The earliest bit time at or after `now` at which this agent may
    /// drive a non-recessive level onto the bus — i.e. at which
    /// [`BitAgent::tx_level`] may first return `Some(Level::Dominant)` —
    /// **regardless of what the agent observes in between**.
    ///
    /// This is the agent's side of the packed kernel's stretch-negotiation
    /// contract (DESIGN.md §11). Unlike [`BitAgent::next_activity`], the
    /// promise must hold for *arbitrary* bus input: the simulator keeps
    /// delivering every bit via `on_bit` inside a packed stretch, but it
    /// resolves the wired-AND for the whole stretch up front, so the
    /// agent's TX contribution must be recessive for every bit strictly
    /// before the returned instant. `None` means the agent never drives (a
    /// pure observer). The conservative default `Some(now)` keeps the
    /// simulator in per-bit lockstep around this agent.
    fn drive_horizon(&self, now: BitInstant) -> Option<BitInstant> {
        Some(now)
    }

    /// Advances the agent over `bits` consecutive recessive bus bits
    /// starting at `from`, in closed form.
    ///
    /// Must be exactly equivalent to `bits` successive calls of
    /// `set_own_transmission(false)` + `on_bit(Level::Recessive, t)` for
    /// `t` in `[from, from + bits)`. Only called inside a window that
    /// [`BitAgent::next_activity`] declared quiescent. The default
    /// replays the bits one by one — always correct, never faster.
    fn skip_idle(&mut self, bits: u64, from: BitInstant) {
        for i in 0..bits {
            self.set_own_transmission(false);
            self.on_bit(Level::Recessive, from + crate::time::BitDuration::bits(i));
        }
    }
}

impl<T: BitAgent + ?Sized> BitAgent for Box<T> {
    fn on_bit(&mut self, level: Level, now: BitInstant) {
        (**self).on_bit(level, now);
    }

    fn tx_level(&self) -> Option<Level> {
        (**self).tx_level()
    }

    fn set_own_transmission(&mut self, transmitting: bool) {
        (**self).set_own_transmission(transmitting);
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        (**self).next_activity(now)
    }

    fn drive_horizon(&self, now: BitInstant) -> Option<BitInstant> {
        (**self).drive_horizon(now)
    }

    fn skip_idle(&mut self, bits: u64, from: BitInstant) {
        (**self).skip_idle(bits, from);
    }
}

/// A no-op agent: observes nothing, drives nothing.
///
/// Useful as the default agent of simulator nodes without a defense.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassiveAgent;

impl BitAgent for PassiveAgent {
    fn on_bit(&mut self, _level: Level, _now: BitInstant) {}

    fn tx_level(&self) -> Option<Level> {
        None
    }

    fn next_activity(&self, _now: BitInstant) -> Option<BitInstant> {
        None
    }

    fn drive_horizon(&self, _now: BitInstant) -> Option<BitInstant> {
        None
    }

    fn skip_idle(&mut self, _bits: u64, _from: BitInstant) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_agent_never_drives() {
        let mut agent = PassiveAgent;
        agent.on_bit(Level::Dominant, BitInstant::ZERO);
        assert_eq!(agent.tx_level(), None);
        agent.set_own_transmission(true);
        assert_eq!(agent.tx_level(), None);
    }

    #[test]
    fn bit_agent_is_object_safe() {
        let mut agents: Vec<Box<dyn BitAgent>> = vec![Box::new(PassiveAgent)];
        for agent in &mut agents {
            agent.on_bit(Level::Recessive, BitInstant::ZERO);
            assert!(agent.tx_level().is_none());
        }
    }
}

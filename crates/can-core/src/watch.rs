//! Shared wire observer for bit-level bus participants.
//!
//! Every peripheral-conflict participant (CANflict-style attackers, passive
//! bit-level IDS taps) needs the same front end a defending
//! [`crate::agent::BitAgent`] needs: hunt for a SOF after ≥ 11 recessive
//! bits, destuff the stuffed region, count destuffed positions, accumulate
//! the arbitration field, and know where the frame ends. [`FrameWatch`]
//! packages that state machine once so downstream crates (`can-attacks`'
//! bit-level adversary zoo, `can-ids` wire observers) only implement their
//! *policy* on top of it. It originated in `can-attacks` and is re-exported
//! from there for compatibility.
//!
//! Unlike a minimal SOF hunter, the watch tracks the frame through its
//! unstuffed tail (CRC delimiter, ACK, EOF): destuffing formally ends after
//! the CRC sequence, and a naive destuffer would mistake the ≥ 8 recessive
//! tail bits for stuff violations.

use crate::bitstream::{Destuffed, Destuffer, FrameLayout, MIN_INTERFRAME_RECESSIVE};
use crate::id::CanId;
use crate::level::Level;

/// Destuffed position (1-based, SOF = 1) of the last identifier bit: the
/// arbitration winner is known once [`FrameWatch::cnt`] reaches this.
pub const ID_COMPLETE_CNT: u32 = 12;

/// What one pushed wire bit amounted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEvent {
    /// Bus idle (or hunting for enough recessive bits before a SOF).
    Idle,
    /// This dominant bit opened a frame (`cnt` is now 1).
    Sof,
    /// A destuffed payload bit was consumed (`cnt` advanced).
    Bit(Level),
    /// A stuff bit was consumed (`cnt` unchanged).
    Stuff,
    /// An unstuffed tail bit (CRC delimiter / ACK / EOF) was consumed.
    Tail,
    /// This bit completed the EOF; the watch is hunting again.
    FrameEnd,
    /// Six equal levels inside the stuffed region. The frame is dead
    /// (error flags follow); the watch aborted back to hunting. Carries
    /// the destuffed position at which the violation was observed.
    Violation(u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WatchState {
    /// Hunting: counting recessive bits toward a SOF-arming threshold.
    BusIdle,
    /// Inside the stuffed region (SOF through CRC sequence).
    Stuffed,
    /// A run of five ended exactly at the last CRC bit: one more stuff
    /// bit is on the wire before the CRC delimiter.
    TrailingStuff,
    /// The unstuffed tail; counts down the 10 remaining bits
    /// (CRC delimiter, ACK slot, ACK delimiter, 7 × EOF).
    Tail { left: u32 },
}

/// Length of the unstuffed frame tail: CRC delimiter + ACK slot + ACK
/// delimiter + EOF.
const TAIL_BITS: u32 = 10;

/// Incremental observer of one CAN wire, from the perspective of a
/// bit-level agent with no controller: SOF hunting, destuffing, field
/// accumulation and frame-end tracking.
#[derive(Debug, Clone)]
pub struct FrameWatch {
    state: WatchState,
    recessive_run: u32,
    destuffer: Destuffer,
    /// Destuffed frame position, SOF = 1. Stuff bits do not advance it.
    cnt: u32,
    id_acc: u16,
    id_bits: u8,
    rtr: bool,
    dlc_acc: u8,
    layout: Option<FrameLayout>,
    /// Level of the most recent wire bit (for stuff-bit prediction).
    last_level: Option<Level>,
    /// Recessive run inside the tail, carried into hunting at frame end
    /// so back-to-back frames re-arm exactly like a real controller.
    tail_recessive: u32,
}

impl Default for FrameWatch {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameWatch {
    /// A watch with no history, hunting for a SOF.
    pub fn new() -> Self {
        FrameWatch {
            state: WatchState::BusIdle,
            recessive_run: 0,
            destuffer: Destuffer::new(),
            cnt: 0,
            id_acc: 0,
            id_bits: 0,
            rtr: false,
            dlc_acc: 0,
            layout: None,
            last_level: None,
            tail_recessive: 0,
        }
    }

    /// Whether the watch is hunting (no frame in progress).
    pub fn is_idle(&self) -> bool {
        self.state == WatchState::BusIdle
    }

    /// Destuffed position within the current frame (SOF = 1); 0 when idle.
    pub fn cnt(&self) -> u32 {
        self.cnt
    }

    /// The frame's identifier, once all 11 arbitration bits are in.
    pub fn id(&self) -> Option<CanId> {
        (self.id_bits == 11).then(|| CanId::from_raw(self.id_acc))
    }

    /// The frame's layout, known once the DLC is complete (`cnt ≥ 19`).
    pub fn layout(&self) -> Option<FrameLayout> {
        self.layout
    }

    /// Whether the *next* wire bit will be a stuff bit.
    pub fn expecting_stuff(&self) -> bool {
        matches!(self.state, WatchState::Stuffed | WatchState::TrailingStuff)
            && self.destuffer.expecting_stuff()
    }

    /// Whether the next wire bit will be a **recessive** stuff bit — the
    /// only kind a dominant-drive attacker can overwrite into a stuff
    /// error (a dominant stuff bit is already at the attacker's level).
    pub fn expecting_recessive_stuff(&self) -> bool {
        self.expecting_stuff() && self.last_level == Some(Level::Dominant)
    }

    /// Index of the tail bit the *next* wire bit will occupy (0 = CRC
    /// delimiter), or `None` while not at/inside the tail.
    pub fn next_tail_index(&self) -> Option<u32> {
        match self.state {
            WatchState::Tail { left } => Some(TAIL_BITS - left),
            _ => None,
        }
    }

    /// Abandons the current frame and returns to hunting with no
    /// recessive history (used after a strike destroys the frame: the
    /// ≥ 11 recessive bits of error delimiter + intermission re-arm the
    /// hunt before the next SOF).
    pub fn abort(&mut self) {
        self.state = WatchState::BusIdle;
        self.recessive_run = 0;
        self.cnt = 0;
    }

    /// Closed-form equivalent of pushing `bits` recessive bus bits while
    /// hunting. Panics (debug) if a frame is in progress — callers gate
    /// this on [`FrameWatch::is_idle`] via their `next_activity` seam.
    pub fn skip_idle(&mut self, bits: u64) {
        debug_assert!(self.is_idle(), "skip_idle outside a quiescent window");
        self.recessive_run = self
            .recessive_run
            .saturating_add(u32::try_from(bits).unwrap_or(u32::MAX));
        self.last_level = Some(Level::Recessive);
    }

    fn enter_frame(&mut self) {
        self.state = WatchState::Stuffed;
        self.recessive_run = 0;
        self.destuffer.reset();
        let _ = self.destuffer.push(Level::Dominant);
        self.cnt = 1;
        self.id_acc = 0;
        self.id_bits = 0;
        self.rtr = false;
        self.dlc_acc = 0;
        self.layout = None;
        self.tail_recessive = 0;
    }

    /// Feeds one sampled wire bit.
    pub fn push(&mut self, level: Level) -> WatchEvent {
        let event = self.push_inner(level);
        self.last_level = Some(level);
        event
    }

    fn push_inner(&mut self, level: Level) -> WatchEvent {
        match self.state {
            WatchState::BusIdle => {
                if level.is_recessive() {
                    self.recessive_run = self.recessive_run.saturating_add(1);
                    WatchEvent::Idle
                } else if self.recessive_run >= MIN_INTERFRAME_RECESSIVE as u32 {
                    self.enter_frame();
                    WatchEvent::Sof
                } else {
                    self.recessive_run = 0;
                    WatchEvent::Idle
                }
            }
            WatchState::Stuffed => match self.destuffer.push(level) {
                Destuffed::Violation => {
                    let at = self.cnt;
                    self.abort();
                    WatchEvent::Violation(at)
                }
                Destuffed::StuffBit => WatchEvent::Stuff,
                Destuffed::Bit(bit) => {
                    self.cnt += 1;
                    self.on_payload_bit(bit);
                    WatchEvent::Bit(bit)
                }
            },
            WatchState::TrailingStuff => match self.destuffer.push(level) {
                Destuffed::Violation => {
                    let at = self.cnt;
                    self.abort();
                    WatchEvent::Violation(at)
                }
                _ => {
                    self.state = WatchState::Tail { left: TAIL_BITS };
                    WatchEvent::Stuff
                }
            },
            WatchState::Tail { left } => {
                if level.is_recessive() {
                    self.tail_recessive = self.tail_recessive.saturating_add(1);
                } else {
                    self.tail_recessive = 0;
                }
                let left = left - 1;
                if left == 0 {
                    // Frame complete: hunt again, crediting the recessive
                    // tail run (ACK delimiter + EOF on a clean frame) so
                    // the 3-bit intermission suffices before the next SOF.
                    self.state = WatchState::BusIdle;
                    self.recessive_run = self.tail_recessive;
                    self.cnt = 0;
                    WatchEvent::FrameEnd
                } else {
                    self.state = WatchState::Tail { left };
                    WatchEvent::Tail
                }
            }
        }
    }

    fn on_payload_bit(&mut self, bit: Level) {
        match self.cnt {
            2..=12 => {
                self.id_acc = (self.id_acc << 1) | bit.to_bit() as u16;
                self.id_bits += 1;
            }
            13 => self.rtr = bit.to_bit(),
            16..=19 => {
                self.dlc_acc = (self.dlc_acc << 1) | bit.to_bit() as u8;
                if self.cnt == 19 {
                    // DLC values 9..15 mean 8 data bytes (ISO 11898-1);
                    // remote frames carry no data regardless of DLC.
                    let data_bytes = if self.rtr {
                        0
                    } else {
                        self.dlc_acc.min(8) as usize
                    };
                    self.layout = Some(FrameLayout::for_payload(data_bytes));
                }
            }
            _ => {}
        }
        // End of the stuffed region: the CRC sequence is complete.
        if let Some(layout) = self.layout {
            if self.cnt as usize == layout.stuffed_region_bits() {
                self.state = if self.destuffer.expecting_stuff() {
                    WatchState::TrailingStuff
                } else {
                    WatchState::Tail { left: TAIL_BITS }
                };
                self.tail_recessive = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::stuff_frame;
    use crate::frame::CanFrame;

    fn feed_idle(watch: &mut FrameWatch, bits: usize) {
        for _ in 0..bits {
            assert_eq!(watch.push(Level::Recessive), WatchEvent::Idle);
        }
    }

    #[test]
    fn walks_a_complete_frame_and_rearms() {
        let frame = CanFrame::data_frame(CanId::from_raw(0x173), &[0xDE, 0xAD]).unwrap();
        let wire = stuff_frame(&frame);
        let mut watch = FrameWatch::new();
        feed_idle(&mut watch, 12);

        let mut events = Vec::new();
        for &bit in &wire.bits {
            events.push(watch.push(bit));
        }
        assert_eq!(events[0], WatchEvent::Sof);
        assert_eq!(*events.last().unwrap(), WatchEvent::FrameEnd);
        assert!(!events.contains(&WatchEvent::Violation(0)));
        assert!(watch.is_idle());
        // ACK delimiter + EOF = 8 recessive bits credited toward re-arm:
        // the 3-bit intermission completes the 11 needed before a SOF.
        feed_idle(&mut watch, 3);
        assert_eq!(watch.push(Level::Dominant), WatchEvent::Sof);
    }

    #[test]
    fn accumulates_id_and_layout() {
        let frame = CanFrame::data_frame(CanId::from_raw(0x2A5), &[1, 2, 3]).unwrap();
        let wire = stuff_frame(&frame);
        let mut watch = FrameWatch::new();
        feed_idle(&mut watch, 12);
        for &bit in &wire.bits {
            watch.push(bit);
        }
        // Replay a second frame and probe mid-frame state during it.
        feed_idle(&mut watch, 3);
        let mut id_at_12 = None;
        let mut layout_at_19 = None;
        for &bit in &wire.bits {
            watch.push(bit);
            if watch.cnt() == 12 && id_at_12.is_none() {
                id_at_12 = watch.id();
            }
            if watch.cnt() == 19 && layout_at_19.is_none() {
                layout_at_19 = watch.layout();
            }
        }
        assert_eq!(id_at_12, Some(CanId::from_raw(0x2A5)));
        assert_eq!(layout_at_19, Some(FrameLayout::for_payload(3)));
    }

    #[test]
    fn predicts_recessive_stuff_bits() {
        // ID 0x000: SOF + 11 dominant bits force recessive stuff bits at
        // wire positions 5 and 11.
        let frame = CanFrame::data_frame(CanId::from_raw(0), &[]).unwrap();
        let wire = stuff_frame(&frame);
        let mut watch = FrameWatch::new();
        feed_idle(&mut watch, 12);
        let mut predicted = Vec::new();
        for (i, &bit) in wire.bits.iter().enumerate() {
            if watch.expecting_recessive_stuff() {
                predicted.push(i);
            }
            watch.push(bit);
        }
        assert_eq!(&predicted[..2], &[5, 11]);
        for &p in &predicted {
            assert_eq!(wire.bits[p], Level::Recessive, "wire bit {p}");
            assert!(wire.stuff_positions.contains(&p), "wire bit {p}");
        }
    }

    #[test]
    fn tail_indices_line_up_with_the_layout() {
        let frame = CanFrame::data_frame(CanId::from_raw(0x315), &[9; 4]).unwrap();
        let wire = stuff_frame(&frame);
        let mut watch = FrameWatch::new();
        feed_idle(&mut watch, 12);
        let mut first_tail_wire_index = None;
        for (i, &bit) in wire.bits.iter().enumerate() {
            if watch.next_tail_index() == Some(0) && first_tail_wire_index.is_none() {
                first_tail_wire_index = Some(i);
            }
            watch.push(bit);
        }
        // Tail bit 0 is the CRC delimiter: unstuffed index 34 + d, offset
        // by every stuff bit inserted before it.
        let layout = FrameLayout::of(&frame);
        let expected = layout.stuffed_region_bits() + wire.stuff_count();
        assert_eq!(first_tail_wire_index, Some(expected));
    }

    #[test]
    fn six_equal_bits_abort_to_hunting() {
        let mut watch = FrameWatch::new();
        feed_idle(&mut watch, 12);
        watch.push(Level::Dominant); // SOF
        for _ in 0..4 {
            watch.push(Level::Dominant);
        }
        // Sixth dominant: stuff violation at the current position.
        assert_eq!(watch.push(Level::Dominant), WatchEvent::Violation(5));
        assert!(watch.is_idle());
        // Error delimiter + intermission re-arm the hunt.
        feed_idle(&mut watch, 11);
        assert_eq!(watch.push(Level::Dominant), WatchEvent::Sof);
    }

    #[test]
    fn skip_idle_matches_bitwise_replay() {
        let mut skipped = FrameWatch::new();
        let mut replayed = FrameWatch::new();
        skipped.skip_idle(500);
        for _ in 0..500 {
            replayed.push(Level::Recessive);
        }
        let frame = CanFrame::data_frame(CanId::from_raw(0x111), &[7]).unwrap();
        let wire = stuff_frame(&frame);
        for &bit in &wire.bits {
            assert_eq!(skipped.push(bit), replayed.push(bit));
        }
        assert_eq!(skipped.id(), replayed.id());
    }
}

//! The 11-bit CAN 2.0A identifier.
//!
//! CAN frames carry no source or destination address; the identifier encodes
//! both the *meaning* and the *priority* of a message. Lower numeric values
//! win arbitration ("dominant 0 overwrites recessive 1"), which is exactly
//! the property DoS attackers abuse by flooding low identifiers.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::errors::InvalidId;
use crate::level::Level;

/// An 11-bit CAN 2.0A identifier.
///
/// Construction validates the 11-bit range; the inner value is therefore
/// always `<= CanId::MAX_RAW`.
///
/// The derived [`Ord`] is numeric: *smaller is higher priority*. Use
/// [`CanId::outranks`] when priority semantics should be explicit at the
/// call site.
///
/// ```
/// use can_core::CanId;
/// let brake = CanId::new(0x064).unwrap();
/// let infotainment = CanId::new(0x5F0).unwrap();
/// assert!(brake.outranks(infotainment));
/// assert_eq!(format!("{brake}"), "0x064");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CanId(u16);

impl CanId {
    /// Number of identifier bits in a CAN 2.0A (base format) frame.
    pub const BITS: usize = 11;

    /// The largest raw identifier value, `0x7FF`.
    pub const MAX_RAW: u16 = 0x7FF;

    /// The highest-priority identifier, `0x000` — the classic "traditional
    /// DoS" identifier from the paper's threat model.
    pub const HIGHEST_PRIORITY: CanId = CanId(0);

    /// The lowest-priority identifier, `0x7FF`.
    pub const LOWEST_PRIORITY: CanId = CanId(Self::MAX_RAW);

    /// Creates an identifier, validating the 11-bit range.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidId`] if `raw > 0x7FF`.
    ///
    /// ```
    /// use can_core::CanId;
    /// assert!(CanId::new(0x7FF).is_ok());
    /// assert!(CanId::new(0x800).is_err());
    /// ```
    pub const fn new(raw: u16) -> Result<Self, InvalidId> {
        if raw > Self::MAX_RAW {
            Err(InvalidId { raw })
        } else {
            Ok(CanId(raw))
        }
    }

    /// Creates an identifier from a value known to be in range.
    ///
    /// # Panics
    ///
    /// Panics if `raw > 0x7FF`. Prefer [`CanId::new`] for untrusted input;
    /// this is intended for literals in tests and tables.
    pub const fn from_raw(raw: u16) -> Self {
        match Self::new(raw) {
            Ok(id) => id,
            Err(_) => panic!("CAN identifier out of 11-bit range"),
        }
    }

    /// The raw identifier value.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Returns `true` if `self` wins arbitration against `other`
    /// (numerically smaller ⇒ higher priority).
    ///
    /// Equal identifiers do not outrank each other.
    #[inline]
    pub const fn outranks(self, other: CanId) -> bool {
        self.0 < other.0
    }

    /// The identifier bit at `index`, MSB first (`index 0` is transmitted
    /// first on the wire).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 11`.
    ///
    /// ```
    /// use can_core::{CanId, Level};
    /// let id = CanId::from_raw(0b100_0000_0000);
    /// assert_eq!(id.bit(0), Level::Recessive); // MSB is 1
    /// assert_eq!(id.bit(1), Level::Dominant);
    /// ```
    #[inline]
    pub fn bit(self, index: usize) -> Level {
        assert!(index < Self::BITS, "identifier bit index out of range");
        Level::from_bit((self.0 >> (Self::BITS - 1 - index)) & 1 == 1)
    }

    /// Iterates over the 11 identifier bits in wire order (MSB first).
    pub fn bits(self) -> impl Iterator<Item = Level> {
        (0..Self::BITS).map(move |i| self.bit(i))
    }

    /// Number of trailing (least-significant) dominant bits.
    ///
    /// Relevant to the counterattack analysis (paper §IV-E): if the five
    /// least-significant identifier bits are dominant, a single injected
    /// dominant bit in the RTR slot already produces a stuff error.
    ///
    /// ```
    /// use can_core::CanId;
    /// assert_eq!(CanId::from_raw(0b000_0010_0000).trailing_dominant_bits(), 5);
    /// assert_eq!(CanId::from_raw(0x7FF).trailing_dominant_bits(), 0);
    /// ```
    #[inline]
    pub const fn trailing_dominant_bits(self) -> u32 {
        if self.0 == 0 {
            Self::BITS as u32
        } else {
            let tz = self.0.trailing_zeros();
            if tz > Self::BITS as u32 {
                Self::BITS as u32
            } else {
                tz
            }
        }
    }

    /// The next-lower identifier (higher priority), if any.
    pub const fn higher_priority_neighbor(self) -> Option<CanId> {
        if self.0 == 0 {
            None
        } else {
            Some(CanId(self.0 - 1))
        }
    }

    /// The next-higher identifier (lower priority), if any.
    pub const fn lower_priority_neighbor(self) -> Option<CanId> {
        if self.0 == Self::MAX_RAW {
            None
        } else {
            Some(CanId(self.0 + 1))
        }
    }

    /// Iterates over the whole 11-bit identifier space in priority order.
    pub fn all() -> impl Iterator<Item = CanId> {
        (0..=Self::MAX_RAW).map(CanId)
    }
}

impl TryFrom<u16> for CanId {
    type Error = InvalidId;

    fn try_from(raw: u16) -> Result<Self, InvalidId> {
        CanId::new(raw)
    }
}

impl From<CanId> for u16 {
    fn from(id: CanId) -> u16 {
        id.raw()
    }
}

impl fmt::Display for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:03X}", self.0)
    }
}

impl fmt::LowerHex for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_validation() {
        assert_eq!(CanId::new(0).unwrap().raw(), 0);
        assert_eq!(CanId::new(0x7FF).unwrap().raw(), 0x7FF);
        assert_eq!(CanId::new(0x800).unwrap_err(), InvalidId { raw: 0x800 });
        assert!(CanId::new(u16::MAX).is_err());
    }

    #[test]
    #[should_panic(expected = "out of 11-bit range")]
    fn from_raw_panics_out_of_range() {
        let _ = CanId::from_raw(0x800);
    }

    #[test]
    fn priority_order() {
        let high = CanId::from_raw(0x005);
        let low = CanId::from_raw(0x00F);
        assert!(high.outranks(low));
        assert!(!low.outranks(high));
        assert!(!high.outranks(high));
        assert!(high < low, "Ord mirrors priority: smaller sorts first");
    }

    #[test]
    fn wire_bit_order_is_msb_first() {
        let id = CanId::from_raw(0x173); // 0b001_0111_0011
        let bits: Vec<bool> = id.bits().map(Level::to_bit).collect();
        assert_eq!(
            bits,
            vec![false, false, true, false, true, true, true, false, false, true, true]
        );
        assert_eq!(bits.len(), CanId::BITS);
    }

    #[test]
    fn bit_round_trip_via_bits() {
        for raw in [0u16, 1, 0x173, 0x2AA, 0x555, 0x7FF] {
            let id = CanId::from_raw(raw);
            let rebuilt = id
                .bits()
                .fold(0u16, |acc, level| (acc << 1) | level.to_bit() as u16);
            assert_eq!(rebuilt, raw);
        }
    }

    #[test]
    #[should_panic(expected = "bit index out of range")]
    fn bit_index_out_of_range_panics() {
        let _ = CanId::from_raw(0).bit(11);
    }

    #[test]
    fn trailing_dominant_bits_cases() {
        assert_eq!(CanId::from_raw(0x000).trailing_dominant_bits(), 11);
        assert_eq!(CanId::from_raw(0x001).trailing_dominant_bits(), 0);
        assert_eq!(CanId::from_raw(0x020).trailing_dominant_bits(), 5);
        assert_eq!(CanId::from_raw(0x040).trailing_dominant_bits(), 6);
        assert_eq!(CanId::from_raw(0x7C0).trailing_dominant_bits(), 6);
    }

    #[test]
    fn neighbors() {
        assert_eq!(CanId::HIGHEST_PRIORITY.higher_priority_neighbor(), None);
        assert_eq!(CanId::LOWEST_PRIORITY.lower_priority_neighbor(), None);
        assert_eq!(
            CanId::from_raw(0x100).higher_priority_neighbor(),
            Some(CanId::from_raw(0x0FF))
        );
        assert_eq!(
            CanId::from_raw(0x100).lower_priority_neighbor(),
            Some(CanId::from_raw(0x101))
        );
    }

    #[test]
    fn id_space_size() {
        // CAN 2.0A supports 2048 unique messages (paper §II-A).
        assert_eq!(CanId::all().count(), 2048);
    }

    #[test]
    fn display_and_hex() {
        let id = CanId::from_raw(0x64);
        assert_eq!(id.to_string(), "0x064");
        assert_eq!(format!("{id:x}"), "64");
        assert_eq!(format!("{id:#b}"), "0b1100100");
    }

    #[test]
    fn try_from_u16() {
        assert_eq!(CanId::try_from(0x123u16).unwrap(), CanId::from_raw(0x123));
        assert!(CanId::try_from(0x1000u16).is_err());
        assert_eq!(u16::from(CanId::from_raw(0x42)), 0x42);
    }
}

//! TEC/REC fault confinement (paper §II-B, Fig. 1b).
//!
//! Every CAN node carries a *transmit error counter* (TEC) and a *receive
//! error counter* (REC). The counters drive the three fault-confinement
//! states:
//!
//! * **error-active** (TEC ≤ 127 and REC ≤ 127): errors are signalled with
//!   *active* error flags — six dominant bits that destroy the ongoing
//!   frame for everyone.
//! * **error-passive** (TEC > 127 or REC > 127): errors are signalled with
//!   *passive* flags — six recessive bits that do not disturb other
//!   traffic; a transmitter additionally suspends for eight bits before
//!   the next transmission.
//! * **bus-off** (TEC ≥ 256): the node stops participating until it has
//!   observed 128 occurrences of eleven consecutive recessive bits.
//!
//! MichiCAN's counterattack walks an attacker down exactly this ladder:
//! 8 × 32 transmit errors = TEC 256 ⇒ bus-off.

use core::fmt;

use serde::{Deserialize, Serialize};

/// TEC increment on a transmit error.
pub const TEC_ERROR_INCREMENT: u16 = 8;

/// REC increment on an ordinary receive error.
pub const REC_ERROR_INCREMENT: u16 = 1;

/// REC increment when a receiver detects a dominant bit right after sending
/// an error flag.
pub const REC_DOMINANT_AFTER_FLAG_INCREMENT: u16 = 8;

/// Error-passive threshold: a counter strictly above this value makes the
/// node error-passive.
pub const PASSIVE_THRESHOLD: u16 = 127;

/// Bus-off threshold: a TEC at or above this value takes the node off the
/// bus.
pub const BUS_OFF_THRESHOLD: u16 = 256;

/// Number of transmit errors (at +8 each) from a cleared TEC to bus-off —
/// the paper's "32 (re)transmissions".
pub const ERRORS_TO_BUS_OFF: u16 = BUS_OFF_THRESHOLD / TEC_ERROR_INCREMENT;

/// Bits in an error flag (active: dominant; passive: recessive).
pub const ERROR_FLAG_BITS: u32 = 6;

/// Recessive bits in an error delimiter.
pub const ERROR_DELIMITER_BITS: u32 = 8;

/// Extra recessive bits an error-passive node waits after transmitting
/// (suspend transmission).
pub const SUSPEND_BITS: u32 = 8;

/// Number of occurrences of eleven consecutive recessive bits required for
/// bus-off recovery.
pub const RECOVERY_SEQUENCES: u32 = 128;

/// Length of one recovery sequence in bits.
pub const RECOVERY_SEQUENCE_BITS: u32 = 11;

/// Fault-confinement state of a node (Fig. 1b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorState {
    /// TEC ≤ 127 and REC ≤ 127; signals errors with active (dominant) flags.
    ErrorActive,
    /// TEC > 127 or REC > 127; signals errors with passive (recessive)
    /// flags and suspends after transmissions.
    ErrorPassive,
    /// TEC ≥ 256; the node no longer participates in traffic.
    BusOff,
}

impl fmt::Display for ErrorState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorState::ErrorActive => f.write_str("error-active"),
            ErrorState::ErrorPassive => f.write_str("error-passive"),
            ErrorState::BusOff => f.write_str("bus-off"),
        }
    }
}

/// The TEC/REC pair of one node, with ISO 11898-1 update rules.
///
/// ```
/// use can_core::{ErrorCounters, ErrorState};
///
/// let mut c = ErrorCounters::new();
/// assert_eq!(c.state(), ErrorState::ErrorActive);
/// for _ in 0..16 {
///     c.on_transmit_error();
/// }
/// assert_eq!(c.state(), ErrorState::ErrorPassive);
/// for _ in 0..16 {
///     c.on_transmit_error();
/// }
/// assert_eq!(c.state(), ErrorState::BusOff);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ErrorCounters {
    tec: u16,
    rec: u16,
}

impl ErrorCounters {
    /// Fresh counters (error-active).
    pub const fn new() -> Self {
        ErrorCounters { tec: 0, rec: 0 }
    }

    /// The transmit error counter.
    #[inline]
    pub const fn tec(&self) -> u16 {
        self.tec
    }

    /// The receive error counter.
    #[inline]
    pub const fn rec(&self) -> u16 {
        self.rec
    }

    /// The fault-confinement state implied by the counters.
    #[inline]
    pub const fn state(&self) -> ErrorState {
        if self.tec >= BUS_OFF_THRESHOLD {
            ErrorState::BusOff
        } else if self.tec > PASSIVE_THRESHOLD || self.rec > PASSIVE_THRESHOLD {
            ErrorState::ErrorPassive
        } else {
            ErrorState::ErrorActive
        }
    }

    /// Applies a transmit error: TEC += 8.
    ///
    /// Returns the new state, so callers can react to the edge into
    /// [`ErrorState::BusOff`].
    pub fn on_transmit_error(&mut self) -> ErrorState {
        self.tec = self.tec.saturating_add(TEC_ERROR_INCREMENT);
        self.state()
    }

    /// Applies a successful transmission: TEC −= 1 (floored at 0).
    pub fn on_transmit_success(&mut self) -> ErrorState {
        self.tec = self.tec.saturating_sub(1);
        self.state()
    }

    /// Applies an ordinary receive error: REC += 1.
    pub fn on_receive_error(&mut self) -> ErrorState {
        self.rec = self.rec.saturating_add(REC_ERROR_INCREMENT);
        self.state()
    }

    /// Applies the "dominant bit detected after sending an error flag"
    /// rule: REC += 8.
    pub fn on_receive_error_severe(&mut self) -> ErrorState {
        self.rec = self.rec.saturating_add(REC_DOMINANT_AFTER_FLAG_INCREMENT);
        self.state()
    }

    /// Applies a successful reception.
    ///
    /// Per ISO 11898-1: if REC was between 1 and 127 it is decremented; if
    /// it was above 127 it is set to a value between 119 and 127 (we use
    /// 127, keeping the node exactly at the passive/active boundary).
    pub fn on_receive_success(&mut self) -> ErrorState {
        if self.rec > PASSIVE_THRESHOLD {
            self.rec = PASSIVE_THRESHOLD;
        } else {
            self.rec = self.rec.saturating_sub(1);
        }
        self.state()
    }

    /// Clears both counters after bus-off recovery.
    pub fn reset_after_recovery(&mut self) {
        self.tec = 0;
        self.rec = 0;
    }

    /// Number of further transmit errors (at +8) until bus-off, assuming no
    /// successful transmissions in between.
    pub fn transmit_errors_until_bus_off(&self) -> u16 {
        if self.tec >= BUS_OFF_THRESHOLD {
            0
        } else {
            (BUS_OFF_THRESHOLD - self.tec).div_ceil(TEC_ERROR_INCREMENT)
        }
    }
}

impl fmt::Display for ErrorCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TEC={} REC={} ({})", self.tec, self.rec, self.state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_counters_are_error_active() {
        let c = ErrorCounters::new();
        assert_eq!(c.tec(), 0);
        assert_eq!(c.rec(), 0);
        assert_eq!(c.state(), ErrorState::ErrorActive);
    }

    #[test]
    fn paper_bus_off_ladder() {
        // Paper §IV-E: after 15 retransmissions (16 errors) the attacker is
        // error-passive; after 32 total it is bus-off.
        let mut c = ErrorCounters::new();
        for i in 1..=15 {
            c.on_transmit_error();
            assert_eq!(c.state(), ErrorState::ErrorActive, "error {i}");
        }
        assert_eq!(c.on_transmit_error(), ErrorState::ErrorPassive);
        assert_eq!(c.tec(), 128);
        for i in 17..=31 {
            c.on_transmit_error();
            assert_eq!(c.state(), ErrorState::ErrorPassive, "error {i}");
        }
        assert_eq!(c.on_transmit_error(), ErrorState::BusOff);
        assert_eq!(c.tec(), 256);
    }

    #[test]
    fn errors_to_bus_off_constant() {
        assert_eq!(ERRORS_TO_BUS_OFF, 32);
    }

    #[test]
    fn tec_decrements_on_success() {
        let mut c = ErrorCounters::new();
        c.on_transmit_error();
        assert_eq!(c.tec(), 8);
        for _ in 0..8 {
            c.on_transmit_success();
        }
        assert_eq!(c.tec(), 0);
        c.on_transmit_success();
        assert_eq!(c.tec(), 0, "TEC floors at zero");
    }

    #[test]
    fn rec_passive_and_recovery_to_boundary() {
        let mut c = ErrorCounters::new();
        for _ in 0..128 {
            c.on_receive_error();
        }
        assert_eq!(c.rec(), 128);
        assert_eq!(c.state(), ErrorState::ErrorPassive);
        c.on_receive_success();
        assert_eq!(c.rec(), 127, "REC above 127 snaps to 127 on good reception");
        assert_eq!(c.state(), ErrorState::ErrorActive);
    }

    #[test]
    fn severe_receive_error_adds_eight() {
        let mut c = ErrorCounters::new();
        c.on_receive_error_severe();
        assert_eq!(c.rec(), 8);
    }

    #[test]
    fn rec_never_causes_bus_off() {
        let mut c = ErrorCounters::new();
        for _ in 0..100_000 {
            c.on_receive_error_severe();
        }
        assert_ne!(c.state(), ErrorState::BusOff, "only the TEC drives bus-off");
        assert_eq!(c.state(), ErrorState::ErrorPassive);
    }

    #[test]
    fn recovery_resets_both_counters() {
        let mut c = ErrorCounters::new();
        for _ in 0..32 {
            c.on_transmit_error();
        }
        assert_eq!(c.state(), ErrorState::BusOff);
        c.reset_after_recovery();
        assert_eq!(c.state(), ErrorState::ErrorActive);
        assert_eq!((c.tec(), c.rec()), (0, 0));
    }

    #[test]
    fn transmit_errors_until_bus_off_counts_down() {
        let mut c = ErrorCounters::new();
        assert_eq!(c.transmit_errors_until_bus_off(), 32);
        c.on_transmit_error();
        assert_eq!(c.transmit_errors_until_bus_off(), 31);
        // A success pushes TEC to 7: still 32 steps of +8 needed to cross
        // 256? 256-7 = 249, ceil(249/8) = 32.
        c.on_transmit_success();
        assert_eq!(c.transmit_errors_until_bus_off(), 32);
    }

    #[test]
    fn tec_saturates_without_overflow() {
        let mut c = ErrorCounters::new();
        for _ in 0..20_000 {
            c.on_transmit_error();
        }
        assert_eq!(c.state(), ErrorState::BusOff);
    }

    #[test]
    fn recovery_constants_match_paper() {
        // "recover into error-active after observing at least 128
        // instances of 11 recessive bits"
        assert_eq!(RECOVERY_SEQUENCES, 128);
        assert_eq!(RECOVERY_SEQUENCE_BITS, 11);
    }

    #[test]
    fn display_mentions_both_counters() {
        let mut c = ErrorCounters::new();
        c.on_transmit_error();
        c.on_receive_error();
        assert_eq!(c.to_string(), "TEC=8 REC=1 (error-active)");
    }
}

//! The CRC-15 of CAN 2.0A.
//!
//! The 15-bit CRC covers every bit from the start-of-frame through the end
//! of the data field, *before* bit stuffing. The generator polynomial is
//!
//! ```text
//! x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1   (0x4599)
//! ```

use crate::level::Level;

/// The CAN CRC-15 generator polynomial (without the leading `x^15` term).
pub const POLYNOMIAL: u16 = 0x4599;

/// Width of the CRC sequence in bits.
pub const WIDTH: usize = 15;

/// Mask selecting the 15 CRC bits.
pub const MASK: u16 = 0x7FFF;

/// A streaming CRC-15 calculator.
///
/// Bits are fed in wire order; [`Crc15::value`] yields the current CRC
/// sequence. The register starts at zero per ISO 11898-1.
///
/// ```
/// use can_core::crc::Crc15;
/// use can_core::Level;
///
/// let mut crc = Crc15::new();
/// for bit in [true, false, true, true] {
///     crc.push(Level::from_bit(bit));
/// }
/// assert_ne!(crc.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Crc15 {
    register: u16,
}

impl Crc15 {
    /// Creates a calculator with the register cleared.
    pub const fn new() -> Self {
        Crc15 { register: 0 }
    }

    /// Feeds one bit (wire order).
    #[inline]
    pub fn push(&mut self, bit: Level) {
        let nxtbit = bit.to_bit() as u16;
        let crc_nxt = nxtbit ^ ((self.register >> 14) & 1);
        self.register = (self.register << 1) & MASK;
        if crc_nxt == 1 {
            self.register ^= POLYNOMIAL;
        }
    }

    /// Feeds a slice of bits (wire order).
    pub fn push_bits(&mut self, bits: &[Level]) {
        for &bit in bits {
            self.push(bit);
        }
    }

    /// The current 15-bit CRC sequence.
    #[inline]
    pub const fn value(&self) -> u16 {
        self.register
    }
}

/// Computes the CRC-15 of a complete bit sequence (wire order, unstuffed).
///
/// ```
/// use can_core::crc::checksum;
/// use can_core::Level;
///
/// let bits = vec![Level::Dominant; 19];
/// assert_eq!(checksum(&bits), 0, "all-zero input keeps the register clear");
/// ```
pub fn checksum(bits: &[Level]) -> u16 {
    let mut crc = Crc15::new();
    crc.push_bits(bits);
    crc.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_of(levels: &[u8]) -> Vec<Level> {
        levels.iter().map(|&b| Level::from_bit(b == 1)).collect()
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(checksum(&[]), 0);
    }

    #[test]
    fn all_zero_input_is_zero() {
        assert_eq!(checksum(&[Level::Dominant; 64]), 0);
    }

    #[test]
    fn single_one_equals_polynomial_shifted() {
        // After feeding a single 1 the register holds the polynomial.
        let mut crc = Crc15::new();
        crc.push(Level::Recessive);
        assert_eq!(crc.value(), POLYNOMIAL);
    }

    #[test]
    fn streaming_equals_batch() {
        let data = bits_of(&[1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0, 1]);
        let mut streaming = Crc15::new();
        for &b in &data {
            streaming.push(b);
        }
        assert_eq!(streaming.value(), checksum(&data));
    }

    #[test]
    fn value_is_always_15_bits() {
        let mut crc = Crc15::new();
        for i in 0..1000 {
            crc.push(Level::from_bit(i % 3 == 0));
            assert_eq!(crc.value() & !MASK, 0, "register must stay within 15 bits");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        // CRC must change when any single bit of the input flips.
        let data = bits_of(&[1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1]);
        let reference = checksum(&data);
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] = flipped[i].opposite();
            assert_ne!(
                checksum(&flipped),
                reference,
                "flip at {i} must alter the CRC"
            );
        }
    }

    #[test]
    fn detects_burst_errors_up_to_15_bits() {
        // A CRC with a degree-15 generator detects all burst errors of
        // length <= 15.
        let data = bits_of(&[
            0, 1, 1, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1, 0, 0, 0, 1, 1, 0, 1, 1,
        ]);
        let reference = checksum(&data);
        for burst_len in 1..=15usize {
            for start in 0..=(data.len() - burst_len) {
                let mut corrupted = data.clone();
                // A burst flips its first and last bit (and arbitrary middles);
                // flipping every bit of the window is one representative burst.
                for bit in corrupted.iter_mut().skip(start).take(burst_len) {
                    *bit = bit.opposite();
                }
                assert_ne!(
                    checksum(&corrupted),
                    reference,
                    "burst of {burst_len} at {start} must alter the CRC"
                );
            }
        }
    }

    #[test]
    fn known_vector_stability() {
        // Pinned regression vector: the CRC of this fixed input must never
        // change across refactors.
        let data = bits_of(&[
            0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1, // 0x173-ish prefix
            0, 0, 0, 1, 0, 0, 0, // RTR/IDE/r0/DLC=8 prefix sample
        ]);
        let value = checksum(&data);
        assert_eq!(value, checksum(&data), "checksum must be deterministic");
        assert!(value <= MASK);
    }
}

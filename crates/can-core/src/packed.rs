//! Word-packed bus levels: up to 64 bits of wire as one `u64`.
//!
//! The packed simulation kernel (see `can-sim` and DESIGN.md §11) resolves
//! *stretches* of provably event-free bus bits in bulk instead of one
//! [`Level`] at a time. This module provides the shared representation and
//! the branch-free primitives the kernel is built from:
//!
//! * A packed word is a **dominant mask**: bit `i` (LSB-first, so bit 0 is
//!   the earliest wire bit) is `1` iff the corresponding wire bit is
//!   [`Level::Dominant`].
//! * Under that encoding CAN's wired-AND (dominant wins) over any number of
//!   transmitters is a plain bitwise **OR** of their masks.
//! * "First dominant bit" and "first TX/bus disagreement" — the two
//!   conditions that end a stretch early — are `trailing_zeros` on a mask.
//!
//! All functions take an explicit window length `len ≤ 64` and ignore word
//! bits at or above it, so callers can shrink a stretch without re-masking.

use crate::level::Level;

/// Number of wire bits carried by one packed word.
pub const WORD_BITS: u32 = 64;

/// A mask selecting the low `len` bits of a word (`len ≤ 64`).
#[inline]
#[must_use]
pub const fn low_mask(len: u32) -> u64 {
    debug_assert!(len <= WORD_BITS);
    if len >= WORD_BITS {
        u64::MAX
    } else {
        (1u64 << len) - 1
    }
}

/// Packs up to 64 levels into one dominant mask, LSB-first.
///
/// `bits.len()` must be at most [`WORD_BITS`]; unused high bits are zero
/// (recessive).
#[must_use]
pub fn pack_word(bits: &[Level]) -> u64 {
    debug_assert!(bits.len() <= WORD_BITS as usize);
    let mut word = 0u64;
    for (i, level) in bits.iter().enumerate() {
        if level.is_dominant() {
            word |= 1u64 << i;
        }
    }
    word
}

/// Packs an arbitrary-length level slice into consecutive dominant-mask
/// words (LSB-first within each word; the last word is zero-padded).
#[must_use]
pub fn pack_words(bits: &[Level]) -> Vec<u64> {
    bits.chunks(WORD_BITS as usize).map(pack_word).collect()
}

/// Extracts a 64-bit window starting at wire-bit offset `start` from a
/// packed word vector, zero-padding (recessive) past the end.
#[inline]
#[must_use]
pub fn extract_window(words: &[u64], start: usize) -> u64 {
    let w = start / WORD_BITS as usize;
    let off = (start % WORD_BITS as usize) as u32;
    let lo = words.get(w).copied().unwrap_or(0) >> off;
    if off == 0 {
        lo
    } else {
        lo | (words.get(w + 1).copied().unwrap_or(0) << (WORD_BITS - off))
    }
}

/// The level at offset `i` (< 64) of a packed word.
#[inline]
#[must_use]
pub fn level_at(word: u64, i: u32) -> Level {
    debug_assert!(i < WORD_BITS);
    if (word >> i) & 1 == 1 {
        Level::Dominant
    } else {
        Level::Recessive
    }
}

/// Offset of the first dominant bit within the low `len` bits, if any.
#[inline]
#[must_use]
pub fn first_dominant(word: u64, len: u32) -> Option<u32> {
    let masked = word & low_mask(len);
    if masked == 0 {
        None
    } else {
        Some(masked.trailing_zeros())
    }
}

/// Offset of the first bit where two packed words disagree within the low
/// `len` bits, if any.
///
/// For a transmitter this is the first bit where the resolved bus level
/// differs from the level it sent — an arbitration loss, a dominant
/// overwrite, or (sent dominant, bus recessive) a bit error.
#[inline]
#[must_use]
pub fn first_mismatch(sent: u64, bus: u64, len: u32) -> Option<u32> {
    let diff = (sent ^ bus) & low_mask(len);
    if diff == 0 {
        None
    } else {
        Some(diff.trailing_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Level::{Dominant as D, Recessive as R};

    #[test]
    fn pack_word_is_lsb_first_dominant_mask() {
        assert_eq!(pack_word(&[]), 0);
        assert_eq!(pack_word(&[D]), 0b1);
        assert_eq!(pack_word(&[R, D, D, R, D]), 0b10110);
        let all = [D; 64];
        assert_eq!(pack_word(&all), u64::MAX);
    }

    #[test]
    fn wired_and_is_or_of_masks() {
        // Two transmitters: bus dominant wherever either drives dominant.
        let a = pack_word(&[D, R, D, R]);
        let b = pack_word(&[R, R, D, D]);
        let bus = a | b;
        for (i, expect) in [D, R, D, D].iter().enumerate() {
            assert_eq!(level_at(bus, i as u32), *expect);
            let pair = [level_at(a, i as u32), level_at(b, i as u32)];
            assert_eq!(Level::wired_and(pair), *expect, "bit {i}");
        }
    }

    #[test]
    fn pack_words_round_trips_through_extract_window() {
        let mut bits = Vec::new();
        for i in 0..200usize {
            bits.push(if (i * 7) % 3 == 0 { D } else { R });
        }
        let words = pack_words(&bits);
        assert_eq!(words.len(), 4);
        for start in 0..bits.len() {
            let window = extract_window(&words, start);
            for off in 0..WORD_BITS {
                let idx = start + off as usize;
                let expect = bits.get(idx).copied().unwrap_or(R);
                assert_eq!(level_at(window, off), expect, "start {start} off {off}");
            }
        }
    }

    #[test]
    fn extract_window_past_the_end_is_recessive() {
        assert_eq!(extract_window(&[], 0), 0);
        assert_eq!(extract_window(&[u64::MAX], 64), 0);
        // Straddling the final word zero-pads the tail.
        assert_eq!(extract_window(&[u64::MAX], 32), low_mask(32));
    }

    #[test]
    fn first_dominant_respects_the_window_length() {
        let word = pack_word(&[R, R, R, D, R, D]);
        assert_eq!(first_dominant(word, 64), Some(3));
        assert_eq!(first_dominant(word, 4), Some(3));
        assert_eq!(first_dominant(word, 3), None);
        assert_eq!(first_dominant(0, 64), None);
        assert_eq!(first_dominant(u64::MAX, 0), None);
    }

    #[test]
    fn first_mismatch_finds_arbitration_losses() {
        let sent = pack_word(&[R, D, R, R]);
        let bus = pack_word(&[R, D, D, R]); // overwritten at bit 2
        assert_eq!(first_mismatch(sent, bus, 64), Some(2));
        assert_eq!(first_mismatch(sent, bus, 2), None);
        assert_eq!(first_mismatch(sent, sent, 64), None);
    }

    #[test]
    fn low_mask_covers_the_full_range() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(63), u64::MAX >> 1);
        assert_eq!(low_mask(64), u64::MAX);
    }
}

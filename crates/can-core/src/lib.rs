//! # can-core — CAN 2.0A data-link primitives
//!
//! This crate implements the protocol-level substrate of the MichiCAN
//! reproduction: everything ISO 11898-1 defines at the data-link layer that
//! the paper's attacks and defenses rely on, with no simulator or hardware
//! dependencies.
//!
//! The crate is deliberately `std`-light and allocation-conscious so the same
//! types can back both the discrete-event simulator (`can-sim`) and the
//! firmware-shaped defense logic (`michican`).
//!
//! ## Modules
//!
//! * [`level`] — the physical bus level ([`Level`]) and its wired-AND
//!   dominance rule.
//! * [`time`] — bit-time arithmetic: [`BitInstant`], [`BitDuration`],
//!   [`BusSpeed`].
//! * [`id`] — the 11-bit identifier [`CanId`] with CAN's inverted priority
//!   order.
//! * [`frame`] — [`CanFrame`] and its builder.
//! * [`crc`] — the CRC-15 used by CAN 2.0A.
//! * [`bitstream`] — frame serialization to the wire: field layout, bit
//!   stuffing and destuffing.
//! * [`bit_timing`] — time-quantum segment configuration (prescaler,
//!   PROP/PHASE segments, sample point), the driver-level arithmetic the
//!   software synchronization of `michican` replicates.
//! * [`counters`] — TEC/REC fault confinement ([`ErrorCounters`],
//!   [`ErrorState`]) exactly as exploited by bus-off attacks and MichiCAN's
//!   counterattack.
//! * [`errors`] — the five CAN error types and crate error values.
//! * [`pin`] — GPIO-shaped pin abstractions standing in for pin multiplexing
//!   on integrated CAN controllers.
//! * [`packed`] — word-packed bus levels (64 wire bits per `u64`): the
//!   dominant-mask representation and wired-AND/mismatch primitives behind
//!   the packed simulation kernel.
//! * [`agent`] — the [`BitAgent`](agent::BitAgent) trait: bit-level bus
//!   access as granted by pin-multiplexed integrated controllers.
//! * [`app`] — the [`Application`](app::Application) trait: the frame-level
//!   interface classic CAN controllers expose to ECU software.
//! * [`watch`] — [`FrameWatch`](watch::FrameWatch), the shared wire observer
//!   (SOF hunting, destuffing, field tracking) bit-level attackers and
//!   passive IDS taps build on.
//!
//! ## Example
//!
//! ```
//! use can_core::prelude::*;
//!
//! # fn main() -> Result<(), can_core::errors::InvalidFrame> {
//! let frame = CanFrame::builder(CanId::new(0x173).unwrap())
//!     .data(&[0xDE, 0xAD, 0xBE, 0xEF])?
//!     .build();
//! let wire = can_core::bitstream::stuff_frame(&frame);
//! assert!(wire.bits.len() >= 44 + 4 * 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod app;
pub mod bit_timing;
pub mod bitstream;
pub mod counters;
pub mod crc;
pub mod errors;
pub mod frame;
pub mod id;
pub mod level;
pub mod packed;
pub mod pin;
pub mod time;
pub mod watch;

pub use counters::{ErrorCounters, ErrorState};
pub use frame::CanFrame;
pub use id::CanId;
pub use level::Level;
pub use time::{BitDuration, BitInstant, BusSpeed};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::agent::BitAgent;
    pub use crate::app::Application;
    pub use crate::counters::{ErrorCounters, ErrorState};
    pub use crate::frame::{CanFrame, CanFrameBuilder};
    pub use crate::id::CanId;
    pub use crate::level::Level;
    pub use crate::time::{BitDuration, BitInstant, BusSpeed};
}

//! The physical CAN bus level and its wired-AND dominance rule.
//!
//! CAN is an open-collector ("wired-AND") bus: when any node drives the bus
//! *dominant* (logical 0) the bus reads dominant, regardless of how many
//! nodes output *recessive* (logical 1). This single rule underpins
//! arbitration, acknowledgment, error flags — and both the DoS attacks and
//! the MichiCAN counterattack studied in the paper.

use core::fmt;
use core::ops::{BitAnd, BitAndAssign};

/// A single bus level during one nominal bit time.
///
/// `Dominant` corresponds to logical `0`, `Recessive` to logical `1`.
/// Combining levels with `&` applies the wired-AND rule: dominant wins.
///
/// ```
/// use can_core::Level;
/// assert_eq!(Level::Dominant & Level::Recessive, Level::Dominant);
/// assert_eq!(Level::Recessive & Level::Recessive, Level::Recessive);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// Logical `0`; driven, overrides recessive on the bus.
    Dominant,
    /// Logical `1`; the idle/undriven state of the bus.
    Recessive,
}

impl Level {
    /// Converts a logical bit value (`true` = 1 = recessive) into a level.
    ///
    /// ```
    /// use can_core::Level;
    /// assert_eq!(Level::from_bit(true), Level::Recessive);
    /// assert_eq!(Level::from_bit(false), Level::Dominant);
    /// ```
    #[inline]
    pub const fn from_bit(bit: bool) -> Self {
        if bit {
            Level::Recessive
        } else {
            Level::Dominant
        }
    }

    /// Converts this level to its logical bit value (`Recessive` ⇒ `true`).
    #[inline]
    pub const fn to_bit(self) -> bool {
        matches!(self, Level::Recessive)
    }

    /// Returns `true` if this level is [`Level::Dominant`].
    #[inline]
    pub const fn is_dominant(self) -> bool {
        matches!(self, Level::Dominant)
    }

    /// Returns `true` if this level is [`Level::Recessive`].
    #[inline]
    pub const fn is_recessive(self) -> bool {
        matches!(self, Level::Recessive)
    }

    /// The opposite level, as inserted by the bit-stuffing rule.
    ///
    /// ```
    /// use can_core::Level;
    /// assert_eq!(Level::Dominant.opposite(), Level::Recessive);
    /// ```
    #[inline]
    pub const fn opposite(self) -> Self {
        match self {
            Level::Dominant => Level::Recessive,
            Level::Recessive => Level::Dominant,
        }
    }

    /// Wired-AND of an iterator of contributed levels.
    ///
    /// An empty iterator yields [`Level::Recessive`] — an undriven bus floats
    /// recessive.
    ///
    /// ```
    /// use can_core::Level;
    /// let bus = Level::wired_and([Level::Recessive, Level::Dominant]);
    /// assert_eq!(bus, Level::Dominant);
    /// assert_eq!(Level::wired_and([]), Level::Recessive);
    /// ```
    pub fn wired_and<I: IntoIterator<Item = Level>>(levels: I) -> Level {
        levels.into_iter().fold(Level::Recessive, |acc, l| acc & l)
    }
}

impl Default for Level {
    /// The default bus level is recessive (idle bus).
    fn default() -> Self {
        Level::Recessive
    }
}

impl BitAnd for Level {
    type Output = Level;

    #[inline]
    fn bitand(self, rhs: Level) -> Level {
        if self.is_dominant() || rhs.is_dominant() {
            Level::Dominant
        } else {
            Level::Recessive
        }
    }
}

impl BitAndAssign for Level {
    #[inline]
    fn bitand_assign(&mut self, rhs: Level) {
        *self = *self & rhs;
    }
}

impl From<bool> for Level {
    #[inline]
    fn from(bit: bool) -> Self {
        Level::from_bit(bit)
    }
}

impl From<Level> for bool {
    #[inline]
    fn from(level: Level) -> bool {
        level.to_bit()
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Dominant => f.write_str("0"),
            Level::Recessive => f.write_str("1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_wins_wired_and() {
        assert_eq!(Level::Dominant & Level::Dominant, Level::Dominant);
        assert_eq!(Level::Dominant & Level::Recessive, Level::Dominant);
        assert_eq!(Level::Recessive & Level::Dominant, Level::Dominant);
        assert_eq!(Level::Recessive & Level::Recessive, Level::Recessive);
    }

    #[test]
    fn wired_and_of_many() {
        let all_recessive = vec![Level::Recessive; 16];
        assert_eq!(Level::wired_and(all_recessive), Level::Recessive);

        let mut one_dominant = vec![Level::Recessive; 16];
        one_dominant[7] = Level::Dominant;
        assert_eq!(Level::wired_and(one_dominant), Level::Dominant);
    }

    #[test]
    fn empty_bus_floats_recessive() {
        assert_eq!(Level::wired_and(std::iter::empty()), Level::Recessive);
    }

    #[test]
    fn bit_round_trip() {
        for bit in [true, false] {
            assert_eq!(Level::from_bit(bit).to_bit(), bit);
        }
    }

    #[test]
    fn opposite_is_involution() {
        for l in [Level::Dominant, Level::Recessive] {
            assert_eq!(l.opposite().opposite(), l);
            assert_ne!(l.opposite(), l);
        }
    }

    #[test]
    fn and_assign_matches_and() {
        let mut l = Level::Recessive;
        l &= Level::Dominant;
        assert_eq!(l, Level::Dominant);
    }

    #[test]
    fn default_is_recessive() {
        assert_eq!(Level::default(), Level::Recessive);
    }

    #[test]
    fn display_is_logical_value() {
        assert_eq!(Level::Dominant.to_string(), "0");
        assert_eq!(Level::Recessive.to_string(), "1");
    }
}

//! Bit-timing segment configuration.
//!
//! A CAN controller divides each nominal bit time into *time quanta* (TQ)
//! derived from the peripheral clock through a prescaler:
//!
//! ```text
//! |SYNC| PROP       | PHASE1     | PHASE2   |
//! | 1  | 1..8       | 1..8       | 2..8     |   sample point ↑
//! ```
//!
//! The sample point sits between PHASE1 and PHASE2 — the ~70 % the paper's
//! software synchronization replicates (§IV-C). This module computes valid
//! segment configurations for a given MCU clock and bus speed, exactly the
//! arithmetic a driver performs when programming a BTR register, and the
//! basis for the defender's timer-interrupt period.

use core::fmt;
use std::error::Error;

use crate::time::BusSpeed;

/// Segment bounds of classic CAN controllers (in time quanta).
const SYNC_SEG: u32 = 1;
const MAX_PROP: u32 = 8;
const MAX_PHASE1: u32 = 8;
const MIN_PHASE2: u32 = 2;
const MAX_PHASE2: u32 = 8;
const MIN_TQ_PER_BIT: u32 = SYNC_SEG + 1 + 1 + MIN_PHASE2;
const MAX_TQ_PER_BIT: u32 = SYNC_SEG + MAX_PROP + MAX_PHASE1 + MAX_PHASE2;
const MAX_PRESCALER: u32 = 1024;

/// A valid bit-timing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitTiming {
    /// Clock prescaler: TQ = prescaler / clock.
    pub prescaler: u32,
    /// Propagation segment in TQ.
    pub prop_seg: u32,
    /// Phase segment 1 in TQ.
    pub phase_seg1: u32,
    /// Phase segment 2 in TQ.
    pub phase_seg2: u32,
    /// (Re)synchronization jump width in TQ.
    pub sjw: u32,
}

impl BitTiming {
    /// Total time quanta per bit (including the sync segment).
    pub fn tq_per_bit(&self) -> u32 {
        SYNC_SEG + self.prop_seg + self.phase_seg1 + self.phase_seg2
    }

    /// Sample point as a fraction of the bit time.
    pub fn sample_point(&self) -> f64 {
        (SYNC_SEG + self.prop_seg + self.phase_seg1) as f64 / self.tq_per_bit() as f64
    }

    /// The bus speed this configuration yields on `clock_hz`.
    pub fn baud(&self, clock_hz: u64) -> f64 {
        clock_hz as f64 / (self.prescaler as f64 * self.tq_per_bit() as f64)
    }

    /// Maximum tolerable relative oscillator mismatch (df) for correct
    /// resynchronization, per the classic two-condition bound.
    pub fn max_oscillator_tolerance(&self) -> f64 {
        // Condition 1: df <= SJW / (2 * 10 * tq_per_bit)
        let c1 = self.sjw as f64 / (20.0 * self.tq_per_bit() as f64);
        // Condition 2: df <= min(PHASE1, PHASE2) / (2 * (13*tq - PHASE2))
        let min_phase = self.phase_seg1.min(self.phase_seg2) as f64;
        let c2 = min_phase / (2.0 * (13.0 * self.tq_per_bit() as f64 - self.phase_seg2 as f64));
        c1.min(c2)
    }
}

impl fmt::Display for BitTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prescaler {} | 1+{}+{}+{} TQ (sample {:.0} %)",
            self.prescaler,
            self.prop_seg,
            self.phase_seg1,
            self.phase_seg2,
            self.sample_point() * 100.0
        )
    }
}

/// No valid segment configuration exists for the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoTimingSolution {
    /// The peripheral clock.
    pub clock_hz: u64,
    /// The requested speed.
    pub speed: BusSpeed,
}

impl fmt::Display for NoTimingSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no bit-timing solution for {} from a {} Hz clock",
            self.speed, self.clock_hz
        )
    }
}

impl Error for NoTimingSolution {}

/// Computes the bit-timing configuration for `speed` from `clock_hz`,
/// choosing the candidate whose sample point is closest to
/// `target_sample_point` (the paper's 70 %), preferring more TQ per bit
/// (finer resynchronization granularity) on ties.
///
/// # Errors
///
/// Returns [`NoTimingSolution`] when clock, prescaler range and segment
/// bounds admit no exact divisor.
///
/// ```
/// use can_core::bit_timing::solve;
/// use can_core::BusSpeed;
///
/// // The classic 16 MHz / 500 kbit/s setup: 16 TQ per bit.
/// let timing = solve(16_000_000, BusSpeed::K500, 0.70).unwrap();
/// assert_eq!(timing.tq_per_bit(), 16);
/// assert_eq!(timing.prescaler, 2);
/// assert!((timing.sample_point() - 0.6875).abs() < 0.02);
/// ```
pub fn solve(
    clock_hz: u64,
    speed: BusSpeed,
    target_sample_point: f64,
) -> Result<BitTiming, NoTimingSolution> {
    let baud = speed.bits_per_second();
    let mut best: Option<(f64, u32, BitTiming)> = None;

    for tq_per_bit in (MIN_TQ_PER_BIT..=MAX_TQ_PER_BIT).rev() {
        let divisor = baud * tq_per_bit as u64;
        if !clock_hz.is_multiple_of(divisor) {
            continue;
        }
        let prescaler = (clock_hz / divisor) as u32;
        if prescaler == 0 || prescaler > MAX_PRESCALER {
            continue;
        }
        // Place the sample point as close to the target as the segment
        // bounds allow.
        let before_sample = ((tq_per_bit as f64 * target_sample_point).round() as u32)
            .clamp(SYNC_SEG + 1 + 1, tq_per_bit - MIN_PHASE2);
        let phase_seg2 = (tq_per_bit - before_sample).clamp(MIN_PHASE2, MAX_PHASE2);
        let before_sample = tq_per_bit - phase_seg2;
        // Split the pre-sample region into PROP and PHASE1.
        let budget = before_sample - SYNC_SEG;
        let phase_seg1 = (budget / 2).clamp(1, MAX_PHASE1);
        let prop_seg = budget - phase_seg1;
        if !(1..=MAX_PROP).contains(&prop_seg) {
            continue;
        }
        let timing = BitTiming {
            prescaler,
            prop_seg,
            phase_seg1,
            phase_seg2,
            sjw: phase_seg1.min(4),
        };
        let error = (timing.sample_point() - target_sample_point).abs();
        let better = match &best {
            None => true,
            Some((best_error, best_tq, _)) => {
                error < *best_error - 1e-12
                    || ((error - *best_error).abs() < 1e-12 && tq_per_bit > *best_tq)
            }
        };
        if better {
            best = Some((error, tq_per_bit, timing));
        }
    }

    best.map(|(_, _, timing)| timing)
        .ok_or(NoTimingSolution { clock_hz, speed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_16mhz_500k() {
        let t = solve(16_000_000, BusSpeed::K500, 0.70).unwrap();
        assert_eq!(t.baud(16_000_000), 500_000.0);
        assert_eq!(t.tq_per_bit(), 16);
        assert!((0.65..=0.75).contains(&t.sample_point()));
    }

    #[test]
    fn all_paper_speeds_solve_on_paper_clocks() {
        // SAM3X8E CAN peripheral clock (MCK/2 = 42 MHz), S32K144 (80 MHz
        // typical CAN clock), classic 16 MHz standalone controllers.
        for clock in [42_000_000u64, 80_000_000, 16_000_000] {
            for speed in BusSpeed::ALL {
                let t = solve(clock, speed, 0.70).unwrap_or_else(|e| panic!("{e}"));
                assert_eq!(
                    t.baud(clock),
                    speed.bits_per_second() as f64,
                    "clock {clock}, {speed}"
                );
                assert!(
                    (0.6..=0.8).contains(&t.sample_point()),
                    "clock {clock}, {speed}: sample {:.2}",
                    t.sample_point()
                );
                assert!(t.tq_per_bit() >= 8, "enough quanta for resync");
            }
        }
    }

    #[test]
    fn segment_bounds_hold() {
        for clock in [8_000_000u64, 24_000_000, 48_000_000, 120_000_000] {
            for speed in BusSpeed::ALL {
                if let Ok(t) = solve(clock, speed, 0.70) {
                    assert!((1..=MAX_PROP).contains(&t.prop_seg));
                    assert!((1..=MAX_PHASE1).contains(&t.phase_seg1));
                    assert!((MIN_PHASE2..=MAX_PHASE2).contains(&t.phase_seg2));
                    assert!(t.sjw >= 1 && t.sjw <= t.phase_seg1);
                }
            }
        }
    }

    #[test]
    fn oscillator_tolerance_is_in_crystal_territory() {
        // The classic configuration tolerates far more than the ±100 ppm
        // of automotive crystals — consistent with the drift analysis in
        // michican::sync.
        let t = solve(16_000_000, BusSpeed::K500, 0.70).unwrap();
        let df = t.max_oscillator_tolerance();
        assert!(df > 100e-6, "tolerance {df:.2e} must exceed crystal drift");
        assert!(df < 0.02, "but stays below a percent-level sanity bound");
    }

    #[test]
    fn impossible_requests_error() {
        // A 1 MHz clock cannot divide into 1 Mbit/s with >= 5 TQ.
        let err = solve(1_000_000, BusSpeed::M1, 0.70).unwrap_err();
        assert_eq!(
            err,
            NoTimingSolution {
                clock_hz: 1_000_000,
                speed: BusSpeed::M1
            }
        );
        assert!(err.to_string().contains("no bit-timing solution"));
    }

    #[test]
    fn display_is_informative() {
        let t = solve(16_000_000, BusSpeed::K250, 0.70).unwrap();
        let s = t.to_string();
        assert!(s.contains("prescaler"));
        assert!(s.contains("TQ"));
    }
}

//! Sliding-window frequency detector (in the spirit of Ohira et al.,
//! the paper's reference \[15\]).
//!
//! Keeps a per-identifier count of frames within a sliding window; a
//! count above the threshold raises an alert. Flooding DoS attacks — the
//! paper's suspension attacks — inject far above any legitimate period
//! and trip this reliably, but only after `threshold` complete frames
//! have already traversed the bus.

use std::collections::{HashMap, VecDeque};

use can_core::{BitInstant, CanFrame, CanId};

use crate::detector::{Alert, AlertKind, Detector, IdsPhase};

/// A sliding-window per-identifier frequency detector.
#[derive(Debug, Clone)]
pub struct FrequencyIds {
    window_bits: u64,
    threshold: usize,
    history: HashMap<CanId, VecDeque<u64>>,
}

impl FrequencyIds {
    /// Creates a detector alerting when more than `threshold` frames of
    /// one identifier arrive within `window_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `window_bits` or `threshold` is zero.
    pub fn new(window_bits: u64, threshold: usize) -> Self {
        assert!(window_bits > 0, "window must be positive");
        assert!(threshold > 0, "threshold must be positive");
        FrequencyIds {
            window_bits,
            threshold,
            history: HashMap::new(),
        }
    }

    /// Records a received frame; returns `true` if the identifier's rate
    /// is now anomalous.
    pub fn observe(&mut self, id: CanId, now: BitInstant) -> bool {
        let entry = self.history.entry(id).or_default();
        let horizon = now.bits().saturating_sub(self.window_bits);
        while entry.front().is_some_and(|&t| t < horizon) {
            entry.pop_front();
        }
        entry.push_back(now.bits());
        entry.len() > self.threshold
    }

    /// Frames currently tracked within the window for `id`.
    pub fn window_count(&self, id: CanId) -> usize {
        self.history.get(&id).map_or(0, VecDeque::len)
    }
}

impl Detector for FrequencyIds {
    fn observe(&mut self, frame: &CanFrame, now: BitInstant) -> Option<Alert> {
        FrequencyIds::observe(self, frame.id(), now).then_some(Alert {
            at: now,
            id: frame.id(),
            kind: AlertKind::Frequency,
        })
    }

    /// A frequency detector has no training phase: armed from birth.
    fn phase(&self) -> IdsPhase {
        IdsPhase::Armed
    }

    fn arm(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u16) -> CanId {
        CanId::from_raw(raw)
    }

    #[test]
    fn periodic_traffic_stays_quiet() {
        // 1 frame per 500 bits, window 5000 → 10-11 frames per window.
        let mut ids = FrequencyIds::new(5_000, 15);
        for k in 0..100 {
            assert!(
                !ids.observe(id(0x100), BitInstant::from_bits(k * 500)),
                "period traffic below threshold must not alert"
            );
        }
    }

    #[test]
    fn flooding_alerts_after_threshold_frames() {
        let mut ids = FrequencyIds::new(5_000, 10);
        let mut first_alert = None;
        for k in 0..40u64 {
            // Back-to-back ~130-bit frames.
            if ids.observe(id(0x000), BitInstant::from_bits(k * 130)) && first_alert.is_none() {
                first_alert = Some(k);
            }
        }
        assert_eq!(
            first_alert,
            Some(10),
            "alert fires on the frame exceeding the threshold"
        );
    }

    #[test]
    fn window_expiry_clears_old_frames() {
        let mut ids = FrequencyIds::new(1_000, 3);
        for k in 0..3u64 {
            ids.observe(id(0x50), BitInstant::from_bits(k * 100));
        }
        assert_eq!(ids.window_count(id(0x50)), 3);
        // Far in the future: the old burst has left the window.
        assert!(!ids.observe(id(0x50), BitInstant::from_bits(10_000)));
        assert_eq!(ids.window_count(id(0x50)), 1);
    }

    #[test]
    fn identifiers_are_tracked_independently() {
        let mut ids = FrequencyIds::new(1_000, 2);
        assert!(!ids.observe(id(1), BitInstant::from_bits(0)));
        assert!(!ids.observe(id(2), BitInstant::from_bits(1)));
        assert!(!ids.observe(id(1), BitInstant::from_bits(2)));
        assert!(!ids.observe(id(2), BitInstant::from_bits(3)));
        assert!(ids.observe(id(1), BitInstant::from_bits(4)));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = FrequencyIds::new(0, 1);
    }
}

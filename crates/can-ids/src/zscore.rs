//! Mean/stddev z-score detector on inter-arrival times.
//!
//! The simplest member of the timing family: training learns each
//! identifier's inter-arrival mean and standard deviation; once armed, a
//! frame whose interval deviates more than `z · σ` from the mean alerts
//! immediately. Unlike [`CusumIds`](crate::cusum::CusumIds) there is no
//! accumulation — each frame is judged on its own — so the detector is
//! fast on gross anomalies and blind to slow drifts, the classic
//! trade-off the bake-off table makes visible.

use std::collections::HashMap;

use can_core::{BitInstant, CanFrame, CanId};

use crate::detector::{Alert, AlertKind, Detector, IdsPhase};

/// Fraction of the learned mean used as the σ floor (perfectly periodic
/// training traffic would otherwise make every armed interval infinite
/// σ-distance away).
const SIGMA_FLOOR_FRACTION: f64 = 0.05;

#[derive(Debug, Clone, Default)]
struct ZModel {
    last_seen: Option<u64>,
    samples: Vec<u64>,
    mean: f64,
    sigma: f64,
}

/// A per-identifier inter-arrival z-score detector.
#[derive(Debug, Clone)]
pub struct ZScoreIds {
    phase: IdsPhase,
    training_samples: usize,
    z_threshold: f64,
    models: HashMap<CanId, ZModel>,
}

impl ZScoreIds {
    /// Creates a detector training on `training_samples` intervals per
    /// identifier and alerting when `|interval − µ| > z_threshold · σ`.
    ///
    /// # Panics
    ///
    /// Panics if `training_samples < 2` or the threshold is not positive.
    pub fn new(training_samples: usize, z_threshold: f64) -> Self {
        assert!(
            training_samples >= 2,
            "need at least two training intervals"
        );
        assert!(z_threshold > 0.0, "z threshold must be positive");
        ZScoreIds {
            phase: IdsPhase::Training,
            training_samples,
            z_threshold,
            models: HashMap::new(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> IdsPhase {
        self.phase
    }

    /// Ends training: freezes each identifier's mean/σ baseline.
    pub fn arm(&mut self) {
        if self.phase == IdsPhase::Armed {
            return;
        }
        for model in self.models.values_mut() {
            if model.samples.is_empty() {
                continue;
            }
            let n = model.samples.len() as f64;
            let mean = model.samples.iter().sum::<u64>() as f64 / n;
            let var = model
                .samples
                .iter()
                .map(|&x| {
                    let d = x as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / n;
            model.mean = mean;
            model.sigma = var.sqrt().max(mean * SIGMA_FLOOR_FRACTION).max(1.0);
        }
        self.phase = IdsPhase::Armed;
    }

    /// Records a frame of `id` at `now`; returns `true` for an interval
    /// beyond the z-score band (armed phase only).
    pub fn observe(&mut self, id: CanId, now: BitInstant) -> bool {
        let training_samples = self.training_samples;
        let model = self.models.entry(id).or_default();
        let interval = model.last_seen.map(|last| now.bits().saturating_sub(last));
        model.last_seen = Some(now.bits());

        match self.phase {
            IdsPhase::Training => {
                if let Some(interval) = interval {
                    model.samples.push(interval);
                }
                if self
                    .models
                    .values()
                    .all(|m| m.samples.len() >= training_samples)
                {
                    self.arm();
                }
                false
            }
            IdsPhase::Armed => {
                let model = &self.models[&id];
                if model.samples.len() < training_samples || model.sigma <= 0.0 {
                    // No baseline for this identifier: its appearance
                    // after training is itself anomalous.
                    return true;
                }
                match interval {
                    Some(interval) => {
                        (interval as f64 - model.mean).abs() > self.z_threshold * model.sigma
                    }
                    None => false,
                }
            }
        }
    }
}

impl Detector for ZScoreIds {
    fn observe(&mut self, frame: &CanFrame, now: BitInstant) -> Option<Alert> {
        ZScoreIds::observe(self, frame.id(), now).then_some(Alert {
            at: now,
            id: frame.id(),
            kind: AlertKind::ZScore,
        })
    }

    fn phase(&self) -> IdsPhase {
        ZScoreIds::phase(self)
    }

    fn arm(&mut self) {
        ZScoreIds::arm(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u16) -> CanId {
        CanId::from_raw(raw)
    }

    fn trained(period: u64) -> ZScoreIds {
        let mut ids = ZScoreIds::new(4, 6.0);
        for k in 0..6u64 {
            ids.observe(id(0x100), BitInstant::from_bits(k * period));
        }
        ids.arm();
        ids
    }

    #[test]
    fn nominal_period_stays_quiet() {
        let mut ids = trained(600);
        for k in 6..30u64 {
            assert!(!ids.observe(id(0x100), BitInstant::from_bits(k * 600)));
        }
    }

    #[test]
    fn small_jitter_stays_quiet() {
        let mut ids = trained(600);
        let mut t = 5 * 600;
        for jitter in [-50i64, 40, -30, 60, 0] {
            t += (600 + jitter) as u64;
            assert!(!ids.observe(id(0x100), BitInstant::from_bits(t)));
        }
    }

    #[test]
    fn compressed_interval_alerts_on_first_frame() {
        let mut ids = trained(600);
        // σ floor = 30 bits; 6σ band = ±180; a 200-bit interval is 400
        // bits off the mean.
        assert!(ids.observe(id(0x100), BitInstant::from_bits(5 * 600 + 200)));
    }

    #[test]
    fn suspension_gap_alerts() {
        let mut ids = trained(600);
        assert!(ids.observe(id(0x100), BitInstant::from_bits(100_000)));
    }

    #[test]
    fn unknown_identifier_after_training_alerts() {
        let mut ids = trained(600);
        assert!(ids.observe(id(0x064), BitInstant::from_bits(10_000)));
    }
}

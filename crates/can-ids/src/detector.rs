//! The uniform detector interface every timing/frequency IDS implements.
//!
//! A [`Detector`] observes *completed frames only* — the interface a
//! classic CAN controller exposes to software (paper §II-C) — stamped
//! with their sim-time completion instant, and emits typed [`Alert`]s.
//! The trait is the common currency of the bake-off: the
//! [`registry`](crate::registry) enumerates named parameter grids over
//! it, [`DetectorTap`](crate::tap::DetectorTap) attaches any number of
//! detectors to one simulated bus as passive taps, and
//! [`IdsMonitor`](crate::monitor::IdsMonitor) composes detectors into a
//! node application.
//!
//! Because detectors only ever see whole frames, their detection latency
//! is lower-bounded by one complete frame — the structural fact behind
//! the paper's Table I "not real-time" classification, which
//! `bench::idsbench` measures instead of asserting.

use can_core::{BitInstant, CanFrame, CanId};

/// Which detector family raised an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Sliding-window frequency threshold exceeded.
    Frequency,
    /// Inter-arrival time outside the learned tolerance band.
    Interval,
    /// CUSUM statistic over inter-arrival residuals crossed its decision
    /// threshold.
    Cusum,
    /// Shannon entropy of the identifier window left the learned band.
    Entropy,
    /// Inter-arrival z-score beyond the configured multiple of the
    /// learned standard deviation.
    ZScore,
}

impl AlertKind {
    /// Stable lowercase label (journal details, table cells).
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::Frequency => "frequency",
            AlertKind::Interval => "interval",
            AlertKind::Cusum => "cusum",
            AlertKind::Entropy => "entropy",
            AlertKind::ZScore => "zscore",
        }
    }
}

/// A timestamped IDS alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// When the alert fired (completion time of the triggering frame).
    pub at: BitInstant,
    /// The identifier concerned.
    pub id: CanId,
    /// Which detector family fired.
    pub kind: AlertKind,
}

/// Phase of a trainable detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdsPhase {
    /// Learning the clean-traffic baseline; no alerts are raised.
    Training,
    /// Baseline frozen; anomalies raise alerts.
    Armed,
}

/// A frame-level intrusion detector.
///
/// Implementations must be deterministic: the alert sequence is a pure
/// function of the observed `(frame, instant)` sequence, independent of
/// wall clock, iteration order of any internal map, or how the simulator
/// reached each instant (lockstep, fast-forward or packed).
pub trait Detector {
    /// Observes one completed frame; returns the alert it triggered, if
    /// any. Training-phase observations never alert.
    fn observe(&mut self, frame: &CanFrame, now: BitInstant) -> Option<Alert>;

    /// The detector's current phase. Detectors without a training phase
    /// report [`IdsPhase::Armed`] from construction.
    fn phase(&self) -> IdsPhase;

    /// Ends training and freezes the learned baseline. Idempotent; a
    /// no-op for detectors without a training phase.
    fn arm(&mut self);

    /// The earliest future instant at which the detector needs to run
    /// even without a frame completing, or `None` for purely
    /// frame-driven detectors (the default). Mirrors
    /// [`can_core::app::Application::next_activity`] so taps compose
    /// with the fast-forward and packed kernels: a returned instant
    /// bounds closed-form skips.
    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        let _ = now;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_kind_labels_are_stable_and_unique() {
        let kinds = [
            AlertKind::Frequency,
            AlertKind::Interval,
            AlertKind::Cusum,
            AlertKind::Entropy,
            AlertKind::ZScore,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }
}

//! Two-sided CUSUM detector over inter-arrival residuals.
//!
//! The classic sequential change-point detector of the timing-IDS
//! literature (Pollicino/Stabili/Marchetti's comparison): per identifier,
//! training learns the inter-arrival mean and standard deviation; once
//! armed, every interval's standardized residual `z = (x − µ)/σ` feeds
//! two one-sided cumulative sums
//!
//! ```text
//! S⁺ ← max(0, S⁺ + z − k)      (intervals stretching: suspension)
//! S⁻ ← max(0, S⁻ − z − k)      (intervals compressing: fabrication)
//! ```
//!
//! with slack `k = 0.5σ`. Crossing the decision threshold `h` (in σ
//! units) raises an alert and resets both sums, so a sustained attack
//! re-alerts after re-accumulating rather than latching forever.
//!
//! A small deviation accumulates over several frames before crossing;
//! a gross one (flooding at a fraction of the learned period) crosses on
//! the first or second anomalous frame. Either way the decision waits
//! for *complete frames* — the Table I latency floor.

use std::collections::HashMap;

use can_core::{BitInstant, CanFrame, CanId};

use crate::detector::{Alert, AlertKind, Detector, IdsPhase};

/// Fraction of the learned mean used as the σ floor, so perfectly
/// periodic training traffic (σ ≈ 0) keeps a usable residual scale.
const SIGMA_FLOOR_FRACTION: f64 = 0.05;

/// CUSUM slack per sample, in σ units.
const SLACK_SIGMA: f64 = 0.5;

#[derive(Debug, Clone, Default)]
struct CusumModel {
    last_seen: Option<u64>,
    samples: Vec<u64>,
    mean: f64,
    sigma: f64,
    s_pos: f64,
    s_neg: f64,
}

/// A per-identifier two-sided CUSUM detector on inter-arrival times.
#[derive(Debug, Clone)]
pub struct CusumIds {
    phase: IdsPhase,
    training_samples: usize,
    threshold_sigma: f64,
    models: HashMap<CanId, CusumModel>,
}

impl CusumIds {
    /// Creates a detector training on `training_samples` intervals per
    /// identifier, alerting when either cumulative sum exceeds
    /// `threshold_sigma` (the decision threshold `h`, in σ units).
    ///
    /// # Panics
    ///
    /// Panics if `training_samples < 2` or the threshold is not positive.
    pub fn new(training_samples: usize, threshold_sigma: f64) -> Self {
        assert!(
            training_samples >= 2,
            "need at least two training intervals"
        );
        assert!(threshold_sigma > 0.0, "threshold must be positive");
        CusumIds {
            phase: IdsPhase::Training,
            training_samples,
            threshold_sigma,
            models: HashMap::new(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> IdsPhase {
        self.phase
    }

    /// Ends training: freezes each identifier's mean/σ baseline.
    pub fn arm(&mut self) {
        if self.phase == IdsPhase::Armed {
            return;
        }
        for model in self.models.values_mut() {
            if model.samples.is_empty() {
                continue;
            }
            let n = model.samples.len() as f64;
            let mean = model.samples.iter().sum::<u64>() as f64 / n;
            let var = model
                .samples
                .iter()
                .map(|&x| {
                    let d = x as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / n;
            model.mean = mean;
            model.sigma = var.sqrt().max(mean * SIGMA_FLOOR_FRACTION).max(1.0);
        }
        self.phase = IdsPhase::Armed;
    }

    /// Records a frame of `id` at `now`; returns `true` when either
    /// cumulative sum crossed the decision threshold.
    pub fn observe(&mut self, id: CanId, now: BitInstant) -> bool {
        let training_samples = self.training_samples;
        let model = self.models.entry(id).or_default();
        let interval = model.last_seen.map(|last| now.bits().saturating_sub(last));
        model.last_seen = Some(now.bits());

        match self.phase {
            IdsPhase::Training => {
                if let Some(interval) = interval {
                    model.samples.push(interval);
                }
                if self
                    .models
                    .values()
                    .all(|m| m.samples.len() >= training_samples)
                {
                    self.arm();
                }
                false
            }
            IdsPhase::Armed => {
                let model = self.models.get_mut(&id).expect("model inserted above");
                // An identifier never seen in training has no baseline:
                // its very appearance is the anomaly.
                if model.samples.len() < training_samples || model.sigma <= 0.0 {
                    return true;
                }
                let Some(interval) = interval else {
                    return false;
                };
                let z = (interval as f64 - model.mean) / model.sigma;
                model.s_pos = (model.s_pos + z - SLACK_SIGMA).max(0.0);
                model.s_neg = (model.s_neg - z - SLACK_SIGMA).max(0.0);
                if model.s_pos > self.threshold_sigma || model.s_neg > self.threshold_sigma {
                    model.s_pos = 0.0;
                    model.s_neg = 0.0;
                    true
                } else {
                    false
                }
            }
        }
    }
}

impl Detector for CusumIds {
    fn observe(&mut self, frame: &CanFrame, now: BitInstant) -> Option<Alert> {
        CusumIds::observe(self, frame.id(), now).then_some(Alert {
            at: now,
            id: frame.id(),
            kind: AlertKind::Cusum,
        })
    }

    fn phase(&self) -> IdsPhase {
        CusumIds::phase(self)
    }

    fn arm(&mut self) {
        CusumIds::arm(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u16) -> CanId {
        CanId::from_raw(raw)
    }

    fn trained(period: u64) -> CusumIds {
        let mut ids = CusumIds::new(4, 4.0);
        for k in 0..6u64 {
            ids.observe(id(0x100), BitInstant::from_bits(k * period));
        }
        ids.arm();
        ids
    }

    #[test]
    fn trains_then_auto_arms() {
        let mut ids = CusumIds::new(3, 4.0);
        assert_eq!(ids.phase(), IdsPhase::Training);
        for k in 0..5u64 {
            ids.observe(id(0x100), BitInstant::from_bits(k * 500));
        }
        assert_eq!(ids.phase(), IdsPhase::Armed);
    }

    #[test]
    fn nominal_period_never_accumulates() {
        let mut ids = trained(600);
        for k in 6..60u64 {
            assert!(!ids.observe(id(0x100), BitInstant::from_bits(k * 600)));
        }
    }

    #[test]
    fn small_jitter_stays_quiet() {
        let mut ids = trained(600);
        let mut t = 5 * 600;
        for jitter in [-20i64, 15, -10, 25, 0, -15, 20, 10] {
            t += (600 + jitter) as u64;
            assert!(
                !ids.observe(id(0x100), BitInstant::from_bits(t)),
                "jitter {jitter} must not alert"
            );
        }
    }

    #[test]
    fn compressed_intervals_alert_within_a_few_frames() {
        let mut ids = trained(600);
        // 3× overdrive: intervals of 200 bits, z ≈ −13 per frame.
        let mut t = 5 * 600;
        let mut first_alert = None;
        for k in 0..10u64 {
            t += 200;
            if ids.observe(id(0x100), BitInstant::from_bits(t)) && first_alert.is_none() {
                first_alert = Some(k);
            }
        }
        let first = first_alert.expect("flood must alert");
        assert!(first <= 2, "alert within 3 flood frames, got {first}");
    }

    #[test]
    fn unknown_identifier_after_training_alerts_immediately() {
        let mut ids = trained(600);
        assert!(ids.observe(id(0x064), BitInstant::from_bits(10_000)));
    }

    #[test]
    fn alert_resets_the_statistic() {
        let mut ids = trained(600);
        // A mild drift (intervals of 520 bits, z ≈ −2.7) accumulates
        // ~2.2σ per frame: the sum crosses h = 4 every second frame and
        // resets in between, so a 20-frame drift alerts repeatedly but
        // not on every frame.
        let mut t = 5 * 600;
        let mut alerts = 0;
        for _ in 0..20 {
            t += 520;
            if ids.observe(id(0x100), BitInstant::from_bits(t)) {
                alerts += 1;
            }
        }
        assert!(
            alerts >= 2,
            "sustained drift must re-alert after reset, got {alerts}"
        );
        assert!(alerts < 20, "reset must debounce per-frame alerts");
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_panics() {
        let _ = CusumIds::new(4, 0.0);
    }
}

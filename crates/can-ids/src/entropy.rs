//! Entropy-window detector over the bus identifier distribution.
//!
//! Maintains a sliding window of the last `window` frame identifiers and
//! computes its Shannon entropy `H = −Σ p·log₂p` (in bits). Training
//! learns the clean-traffic baseline entropy; once armed, a window whose
//! entropy deviates from the baseline by more than the configured band
//! alerts. Flooding collapses the distribution onto the attacker's
//! identifier (entropy drops); toggling and random-identifier injection
//! widen it (entropy rises) — both directions trip the band.
//!
//! Unlike the per-identifier timing detectors, entropy is a *bus-level*
//! statistic: it needs no per-identifier baseline, so it also catches
//! attacks on identifiers never seen in training — at the cost of the
//! slowest latency in the family (a whole window must turn over before
//! the statistic moves far).
//!
//! Identifier counts live in a `BTreeMap` so the floating-point summation
//! order — and therefore the emitted alert sequence — is identical across
//! processes, shard counts and sim modes.

use std::collections::{BTreeMap, VecDeque};

use can_core::{BitInstant, CanFrame};

use crate::detector::{Alert, AlertKind, Detector, IdsPhase};

/// A sliding-window Shannon-entropy detector on identifiers.
#[derive(Debug, Clone)]
pub struct EntropyIds {
    phase: IdsPhase,
    window: usize,
    band_millibits: u32,
    recent: VecDeque<u16>,
    counts: BTreeMap<u16, u32>,
    /// Entropy observations collected while training.
    training_entropy: Vec<f64>,
    /// Baseline entropy, frozen at arm time (`None` until the first
    /// armed window when training saw no full window).
    baseline: Option<f64>,
}

impl EntropyIds {
    /// Creates a detector over a `window`-frame identifier window,
    /// alerting when the entropy deviates from the learned baseline by
    /// more than `band_millibits` thousandths of a bit.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` or the band is zero.
    pub fn new(window: usize, band_millibits: u32) -> Self {
        assert!(window >= 2, "window must cover at least two frames");
        assert!(band_millibits > 0, "band must be positive");
        EntropyIds {
            phase: IdsPhase::Training,
            window,
            band_millibits,
            recent: VecDeque::with_capacity(window),
            counts: BTreeMap::new(),
            training_entropy: Vec::new(),
            baseline: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> IdsPhase {
        self.phase
    }

    /// Ends training: freezes the baseline at the mean training entropy.
    pub fn arm(&mut self) {
        if self.phase == IdsPhase::Armed {
            return;
        }
        if !self.training_entropy.is_empty() {
            self.baseline = Some(
                self.training_entropy.iter().sum::<f64>() / self.training_entropy.len() as f64,
            );
        }
        self.phase = IdsPhase::Armed;
    }

    /// Entropy of the current window, once it is full.
    pub fn window_entropy(&self) -> Option<f64> {
        (self.recent.len() == self.window).then(|| {
            let n = self.recent.len() as f64;
            -self
                .counts
                .values()
                .map(|&c| {
                    let p = f64::from(c) / n;
                    p * p.log2()
                })
                .sum::<f64>()
        })
    }

    fn push(&mut self, raw_id: u16) {
        if self.recent.len() == self.window {
            if let Some(old) = self.recent.pop_front() {
                if let Some(count) = self.counts.get_mut(&old) {
                    *count -= 1;
                    if *count == 0 {
                        self.counts.remove(&old);
                    }
                }
            }
        }
        self.recent.push_back(raw_id);
        *self.counts.entry(raw_id).or_insert(0) += 1;
    }

    /// Records a frame; returns `true` when the armed window entropy
    /// left the learned band.
    pub fn observe_id(&mut self, raw_id: u16) -> bool {
        self.push(raw_id);
        let Some(entropy) = self.window_entropy() else {
            return false;
        };
        match self.phase {
            IdsPhase::Training => {
                self.training_entropy.push(entropy);
                // Auto-arm once a full window's worth of entropy
                // observations established the baseline.
                if self.training_entropy.len() >= self.window {
                    self.arm();
                }
                false
            }
            IdsPhase::Armed => {
                let baseline = *self.baseline.get_or_insert(entropy);
                (entropy - baseline).abs() * 1_000.0 > f64::from(self.band_millibits)
            }
        }
    }
}

impl Detector for EntropyIds {
    fn observe(&mut self, frame: &CanFrame, now: BitInstant) -> Option<Alert> {
        self.observe_id(frame.id().raw()).then_some(Alert {
            at: now,
            id: frame.id(),
            kind: AlertKind::Entropy,
        })
    }

    fn phase(&self) -> IdsPhase {
        EntropyIds::phase(self)
    }

    fn arm(&mut self) {
        EntropyIds::arm(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds an alternating two-identifier mix until armed.
    fn trained(window: usize) -> EntropyIds {
        let mut ids = EntropyIds::new(window, 400);
        let mut k = 0;
        while ids.phase() == IdsPhase::Training {
            ids.observe_id(if k % 2 == 0 { 0x173 } else { 0x300 });
            k += 1;
            assert!(k < 10_000, "training must terminate");
        }
        ids
    }

    #[test]
    fn balanced_mix_trains_to_one_bit() {
        let ids = trained(16);
        let entropy = ids.window_entropy().unwrap();
        assert!((entropy - 1.0).abs() < 1e-9, "H = {entropy}");
    }

    #[test]
    fn steady_mix_stays_quiet() {
        let mut ids = trained(16);
        for k in 0..100 {
            assert!(!ids.observe_id(if k % 2 == 0 { 0x173 } else { 0x300 }));
        }
    }

    #[test]
    fn flood_collapses_entropy_and_alerts() {
        let mut ids = trained(16);
        let mut first_alert = None;
        for k in 0..32 {
            if ids.observe_id(0x064) && first_alert.is_none() {
                first_alert = Some(k);
            }
        }
        let first = first_alert.expect("flood must alert");
        assert!(first <= 16, "alert within one window, got {first}");
    }

    #[test]
    fn widened_distribution_alerts_too() {
        let mut ids = trained(16);
        let mut alerted = false;
        for k in 0..32u16 {
            // Four balanced identifiers: H → 2.0 bits vs baseline 1.0.
            alerted |= ids.observe_id(0x100 + (k % 4));
        }
        assert!(alerted, "entropy rise must alert");
    }

    #[test]
    fn baseline_freezes_at_arm_time() {
        let mut ids = EntropyIds::new(8, 400);
        for _ in 0..4 {
            ids.observe_id(0x111);
        }
        ids.arm();
        assert_eq!(ids.phase(), IdsPhase::Armed);
        // No full training window: the first armed window sets the
        // baseline, and a same-shape window stays quiet.
        for _ in 0..16 {
            assert!(!ids.observe_id(0x111));
        }
    }
}

//! # can-ids — frame-level intrusion-detection baselines
//!
//! The paper's Table I classifies IDS approaches \[15\]–\[17\] as backward
//! compatible but **not real-time** and **without eradication**. This
//! crate implements the two canonical frame-level detectors so that the
//! classification can be *measured* instead of asserted:
//!
//! * [`frequency`] — a sliding-window rate detector (flooding DoS shows
//!   up as an abnormal per-identifier or bus-wide frame rate);
//! * [`interval`] — an inter-arrival anomaly detector (spoofing shows up
//!   as frames arriving far off the learned period).
//!
//! Both observe *complete frames only* (the interface a classic
//! controller exposes, paper §II-C) — which is precisely why their
//! detection latency is lower-bounded by whole frames, while MichiCAN
//! decides inside the identifier field of the *first* malicious frame.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frequency;
pub mod interval;
pub mod monitor;

pub use frequency::FrequencyIds;
pub use interval::IntervalIds;
pub use monitor::{Alert, AlertKind, IdsMonitor};

//! # can-ids — frame-level intrusion-detection baselines
//!
//! The paper's Table I classifies IDS approaches \[15\]–\[17\] as backward
//! compatible but **not real-time** and **without eradication**. This
//! crate implements the classic timing/frequency detector family so that
//! the classification can be *measured* instead of asserted:
//!
//! * [`frequency`] — a sliding-window rate detector (flooding DoS shows
//!   up as an abnormal per-identifier or bus-wide frame rate);
//! * [`interval`] — an inter-arrival anomaly detector (spoofing shows up
//!   as frames arriving far off the learned period);
//! * [`cusum`] — a two-sided CUSUM over inter-arrival residuals (the
//!   sequential change-point detector of the timing-IDS literature);
//! * [`zscore`] — a per-frame mean/stddev z-score detector;
//! * [`entropy`] — a Shannon-entropy window over the identifier
//!   distribution.
//!
//! All five implement the uniform [`Detector`] trait ([`detector`]):
//! observe completed frames with sim-time timestamps, emit typed
//! [`Alert`]s, optionally report a quiescence horizon. The [`registry`]
//! enumerates stable detector names with parameter grids (mirroring
//! `can_attacks::registry`), and [`tap`] attaches any number of
//! detectors to one simulated bus as passive [`DetectorTap`] observers —
//! the substrate of `bench::idsbench`'s detector × defense bake-off.
//!
//! Detectors observe *complete frames only* (the interface a classic
//! controller exposes, paper §II-C) — which is precisely why their
//! detection latency is lower-bounded by whole frames, while MichiCAN
//! decides inside the identifier field of the *first* malicious frame.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cusum;
pub mod detector;
pub mod entropy;
pub mod frequency;
pub mod interval;
pub mod monitor;
pub mod registry;
pub mod tap;
pub mod zscore;

pub use cusum::CusumIds;
pub use detector::{Alert, AlertKind, Detector, IdsPhase};
pub use entropy::EntropyIds;
pub use frequency::FrequencyIds;
pub use interval::IntervalIds;
pub use monitor::{IdsMonitor, IdsMonitorBuilder};
pub use registry::{all_variants, detector_names, variants_for, DetectorParams, DetectorVariant};
pub use tap::DetectorTap;
pub use zscore::ZScoreIds;

/// Everything needed to build, attach and interrogate detectors:
/// `use can_ids::prelude::*;`.
pub mod prelude {
    pub use crate::cusum::CusumIds;
    pub use crate::detector::{Alert, AlertKind, Detector, IdsPhase};
    pub use crate::entropy::EntropyIds;
    pub use crate::frequency::FrequencyIds;
    pub use crate::interval::IntervalIds;
    pub use crate::monitor::{IdsMonitor, IdsMonitorBuilder};
    pub use crate::registry::{
        all_variants, detector_names, variants_for, DetectorParams, DetectorVariant,
    };
    pub use crate::tap::DetectorTap;
    pub use crate::zscore::ZScoreIds;
}

//! Inter-arrival anomaly detector.
//!
//! Learns each identifier's transmission period during a training phase,
//! then flags frames whose inter-arrival time deviates beyond a tolerance
//! band — the classic timing-based spoofing detector (a fabrication
//! attacker transmitting at a higher frequency than the victim compresses
//! the inter-arrival times).

use std::collections::HashMap;

use can_core::{BitInstant, CanFrame, CanId};

use crate::detector::{Alert, AlertKind, Detector};

pub use crate::detector::IdsPhase;

#[derive(Debug, Clone)]
struct IdModel {
    last_seen: Option<u64>,
    /// Learned intervals during training.
    samples: Vec<u64>,
    mean: f64,
    tolerance: f64,
}

/// An inter-arrival anomaly detector.
#[derive(Debug, Clone)]
pub struct IntervalIds {
    phase: IdsPhase,
    training_samples: usize,
    tolerance_fraction: f64,
    models: HashMap<CanId, IdModel>,
}

impl IntervalIds {
    /// Creates a detector that trains on `training_samples` intervals per
    /// identifier and alerts when an interval deviates more than
    /// `tolerance_fraction` (e.g. 0.5 = ±50 %) from the learned mean.
    ///
    /// # Panics
    ///
    /// Panics if `training_samples < 2` or the tolerance is not positive.
    pub fn new(training_samples: usize, tolerance_fraction: f64) -> Self {
        assert!(
            training_samples >= 2,
            "need at least two training intervals"
        );
        assert!(tolerance_fraction > 0.0, "tolerance must be positive");
        IntervalIds {
            phase: IdsPhase::Training,
            training_samples,
            tolerance_fraction,
            models: HashMap::new(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> IdsPhase {
        self.phase
    }

    /// Forces the transition to the armed phase (e.g. training time over).
    pub fn arm(&mut self) {
        for model in self.models.values_mut() {
            if !model.samples.is_empty() {
                model.mean = model.samples.iter().sum::<u64>() as f64 / model.samples.len() as f64;
                model.tolerance = model.mean * self.tolerance_fraction;
            }
        }
        self.phase = IdsPhase::Armed;
    }

    /// Records a frame; returns `true` for an anomalous inter-arrival
    /// time (armed phase only).
    pub fn observe(&mut self, id: CanId, now: BitInstant) -> bool {
        let training_samples = self.training_samples;
        let model = self.models.entry(id).or_insert(IdModel {
            last_seen: None,
            samples: Vec::new(),
            mean: 0.0,
            tolerance: 0.0,
        });
        let interval = model.last_seen.map(|last| now.bits().saturating_sub(last));
        model.last_seen = Some(now.bits());

        match self.phase {
            IdsPhase::Training => {
                if let Some(interval) = interval {
                    model.samples.push(interval);
                }
                // Auto-arm when every tracked identifier has enough data.
                if self
                    .models
                    .values()
                    .all(|m| m.samples.len() >= training_samples)
                {
                    self.arm();
                }
                false
            }
            IdsPhase::Armed => match interval {
                Some(interval) if self.models[&id].mean > 0.0 => {
                    let model = &self.models[&id];
                    (interval as f64 - model.mean).abs() > model.tolerance
                }
                // Unknown identifier appearing after training: anomalous.
                _ => self.models[&id].samples.len() < training_samples,
            },
        }
    }
}

impl Detector for IntervalIds {
    fn observe(&mut self, frame: &CanFrame, now: BitInstant) -> Option<Alert> {
        IntervalIds::observe(self, frame.id(), now).then_some(Alert {
            at: now,
            id: frame.id(),
            kind: AlertKind::Interval,
        })
    }

    fn phase(&self) -> IdsPhase {
        IntervalIds::phase(self)
    }

    fn arm(&mut self) {
        IntervalIds::arm(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u16) -> CanId {
        CanId::from_raw(raw)
    }

    fn trained(period: u64) -> IntervalIds {
        let mut ids = IntervalIds::new(4, 0.5);
        for k in 0..6u64 {
            ids.observe(id(0x100), BitInstant::from_bits(k * period));
        }
        ids.arm();
        ids
    }

    #[test]
    fn trains_then_arms() {
        let mut ids = IntervalIds::new(3, 0.5);
        assert_eq!(ids.phase(), IdsPhase::Training);
        for k in 0..5u64 {
            ids.observe(id(0x100), BitInstant::from_bits(k * 500));
        }
        assert_eq!(ids.phase(), IdsPhase::Armed, "auto-arms after training");
    }

    #[test]
    fn nominal_period_stays_quiet() {
        let mut ids = trained(500);
        for k in 6..20u64 {
            assert!(!ids.observe(id(0x100), BitInstant::from_bits(k * 500)));
        }
    }

    #[test]
    fn overdriven_spoofing_alerts() {
        let mut ids = trained(500);
        // Attacker injects at 4× the victim's rate: intervals of ~125.
        let mut t = 20 * 500;
        let mut alerts = 0;
        for _ in 0..8 {
            if ids.observe(id(0x100), BitInstant::from_bits(t)) {
                alerts += 1;
            }
            t += 125;
        }
        assert!(alerts >= 7, "compressed intervals must alert: {alerts}");
    }

    #[test]
    fn suspension_gap_alerts() {
        let mut ids = trained(500);
        // The victim falls silent (DoS'd) and reappears much later.
        assert!(ids.observe(id(0x100), BitInstant::from_bits(100_000)));
    }

    #[test]
    fn jitter_within_tolerance_is_accepted() {
        let mut ids = trained(500);
        // Continue from the last training observation (k = 5 ⇒ t = 2500).
        let mut t = 5 * 500;
        for jitter in [-100i64, 80, -60, 120, 0] {
            t += (500 + jitter) as u64;
            assert!(
                !ids.observe(id(0x100), BitInstant::from_bits(t)),
                "±{jitter} bits is within the ±50 % band"
            );
        }
    }
}

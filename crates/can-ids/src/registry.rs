//! The detector registry: every detector family in this crate,
//! enumerable by stable name with its parameter grid.
//!
//! Mirrors `can_attacks::registry`: benches and the `experiments ids`
//! runner never hard-code detector constructors — the registry maps each
//! family to the variants worth sweeping, so adding a detector here
//! automatically grows every downstream bake-off table, differential pin
//! and CI smoke run.
//!
//! Parameters are integers (`Copy + Eq + Hash`, no floats) so variant
//! tables can be `'static` and labels are exact; constructors convert to
//! the detectors' native units (fractions, σ, millibits) at
//! [`DetectorVariant::instantiate`] time.

use crate::cusum::CusumIds;
use crate::detector::Detector;
use crate::entropy::EntropyIds;
use crate::frequency::FrequencyIds;
use crate::interval::IntervalIds;
use crate::zscore::ZScoreIds;

/// Parameters of one registry variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorParams {
    /// [`FrequencyIds`]: sliding-window rate threshold.
    Frequency {
        /// Window width in bus bits.
        window_bits: u64,
        /// Per-identifier frame count above which the rate is anomalous.
        threshold: u32,
    },
    /// [`IntervalIds`]: inter-arrival tolerance band.
    Interval {
        /// Training intervals per identifier.
        training: u32,
        /// Tolerance band around the learned mean, in percent.
        tol_percent: u32,
    },
    /// [`CusumIds`]: cumulative sum over inter-arrival residuals.
    Cusum {
        /// Training intervals per identifier.
        training: u32,
        /// Decision threshold `h`, in σ units.
        h_sigma: u32,
    },
    /// [`ZScoreIds`]: per-frame standardized deviation.
    ZScore {
        /// Training intervals per identifier.
        training: u32,
        /// Alerting deviation, in σ units.
        z: u32,
    },
    /// [`EntropyIds`]: identifier-distribution entropy window.
    Entropy {
        /// Window width in frames.
        window: u32,
        /// Alerting band around the baseline, in millibits of entropy.
        band_millibits: u32,
    },
}

/// One named, parameterized entry of the detector registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DetectorVariant {
    /// Stable registry name of the detector family (e.g. `"cusum"`).
    pub detector: &'static str,
    /// This variant's parameters.
    pub params: DetectorParams,
}

impl DetectorVariant {
    /// Stable variant label: the family name plus its distinguishing
    /// parameters, usable in reports, journals and differential pins.
    pub fn label(&self) -> String {
        match self.params {
            DetectorParams::Frequency {
                window_bits,
                threshold,
            } => format!("{}[win={window_bits},thr={threshold}]", self.detector),
            DetectorParams::Interval {
                training,
                tol_percent,
            } => format!("{}[train={training},tol={tol_percent}%]", self.detector),
            DetectorParams::Cusum { training, h_sigma } => {
                format!("{}[train={training},h={h_sigma}]", self.detector)
            }
            DetectorParams::ZScore { training, z } => {
                format!("{}[train={training},z={z}]", self.detector)
            }
            DetectorParams::Entropy {
                window,
                band_millibits,
            } => format!("{}[win={window},band={band_millibits}]", self.detector),
        }
    }

    /// Builds the detector.
    pub fn instantiate(&self) -> Box<dyn Detector> {
        match self.params {
            DetectorParams::Frequency {
                window_bits,
                threshold,
            } => Box::new(FrequencyIds::new(window_bits, threshold as usize)),
            DetectorParams::Interval {
                training,
                tol_percent,
            } => Box::new(IntervalIds::new(
                training as usize,
                f64::from(tol_percent) / 100.0,
            )),
            DetectorParams::Cusum { training, h_sigma } => {
                Box::new(CusumIds::new(training as usize, f64::from(h_sigma)))
            }
            DetectorParams::ZScore { training, z } => {
                Box::new(ZScoreIds::new(training as usize, f64::from(z)))
            }
            DetectorParams::Entropy {
                window,
                band_millibits,
            } => Box::new(EntropyIds::new(window as usize, band_millibits)),
        }
    }
}

/// The full registry: every detector family with its swept variants, in
/// stable enumeration order (the bake-off table's row order).
pub const REGISTRY: &[(&str, &[DetectorParams])] = &[
    (
        "frequency",
        &[DetectorParams::Frequency {
            window_bits: 5_000,
            threshold: 10,
        }],
    ),
    (
        "interval",
        &[DetectorParams::Interval {
            training: 8,
            tol_percent: 50,
        }],
    ),
    (
        "cusum",
        &[
            DetectorParams::Cusum {
                training: 8,
                h_sigma: 8,
            },
            DetectorParams::Cusum {
                training: 8,
                h_sigma: 4,
            },
        ],
    ),
    ("zscore", &[DetectorParams::ZScore { training: 8, z: 6 }]),
    (
        "entropy",
        &[DetectorParams::Entropy {
            window: 16,
            band_millibits: 400,
        }],
    ),
];

/// All detector family names, in registry order.
pub fn detector_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|(name, _)| *name).collect()
}

/// The swept variants of one detector family, or `None` for an unknown
/// name.
pub fn variants_for(detector: &str) -> Option<Vec<DetectorVariant>> {
    REGISTRY
        .iter()
        .find(|(name, _)| *name == detector)
        .map(|(name, grid)| {
            grid.iter()
                .map(|&params| DetectorVariant {
                    detector: name,
                    params,
                })
                .collect()
        })
}

/// Every variant of every detector family, in registry order.
pub fn all_variants() -> Vec<DetectorVariant> {
    REGISTRY
        .iter()
        .flat_map(|(name, grid)| {
            grid.iter().map(|&params| DetectorVariant {
                detector: name,
                params,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::IdsPhase;
    use can_core::{BitInstant, CanFrame, CanId};

    #[test]
    fn registry_is_enumerable_and_labeled_uniquely() {
        let variants = all_variants();
        assert!(variants.len() >= 6, "expected a sweepable grid");
        let mut labels: Vec<String> = variants.iter().map(DetectorVariant::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), all_variants().len(), "labels must be unique");
    }

    #[test]
    fn every_variant_instantiates_and_arms() {
        let frame = CanFrame::data_frame(CanId::from_raw(0x173), &[0]).unwrap();
        for variant in all_variants() {
            let mut detector = variant.instantiate();
            detector.arm();
            assert_eq!(detector.phase(), IdsPhase::Armed, "{}", variant.label());
            // A single frame after arming never panics.
            let _ = detector.observe(&frame, BitInstant::from_bits(100));
            assert_eq!(
                detector.next_activity(BitInstant::from_bits(100)),
                None,
                "registry detectors are frame-driven"
            );
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(variants_for("not-a-detector").is_none());
        assert!(detector_names().contains(&"cusum"));
        assert_eq!(detector_names().len(), REGISTRY.len());
    }

    #[test]
    fn family_selection_matches_registry_grid() {
        let cusum = variants_for("cusum").unwrap();
        assert_eq!(cusum.len(), 2);
        assert!(cusum.iter().all(|v| v.detector == "cusum"));
    }
}

//! The IDS as a bus application: observes complete frames, raises
//! timestamped alerts — and can do nothing else, which is the point
//! (Table I: detection without eradication).

use can_core::app::Application;
use can_core::{BitInstant, CanFrame, CanId};

use crate::frequency::FrequencyIds;
use crate::interval::IntervalIds;

/// Which detector raised an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Sliding-window frequency threshold exceeded.
    Frequency,
    /// Inter-arrival time outside the learned band.
    Interval,
}

/// A timestamped IDS alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// When the alert fired (completion time of the triggering frame).
    pub at: BitInstant,
    /// The identifier concerned.
    pub id: CanId,
    /// Which detector fired.
    pub kind: AlertKind,
}

/// A passive IDS node application combining both detectors.
#[derive(Debug)]
pub struct IdsMonitor {
    frequency: FrequencyIds,
    interval: IntervalIds,
    alerts: Vec<Alert>,
}

impl IdsMonitor {
    /// Creates a monitor from the two configured detectors.
    pub fn new(frequency: FrequencyIds, interval: IntervalIds) -> Self {
        IdsMonitor {
            frequency,
            interval,
            alerts: Vec::new(),
        }
    }

    /// A typical configuration for a 500 kbit/s bus: 10 ms frequency
    /// window with a 10-frame threshold; interval training over 8 samples
    /// with ±50 % tolerance.
    pub fn typical_500k() -> Self {
        Self::new(FrequencyIds::new(5_000, 10), IntervalIds::new(8, 0.5))
    }

    /// All alerts so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The first alert, if any — the IDS's detection instant.
    pub fn first_alert(&self) -> Option<&Alert> {
        self.alerts.first()
    }

    /// Arms the interval detector (ends training).
    pub fn arm(&mut self) {
        self.interval.arm();
    }
}

impl Application for IdsMonitor {
    fn poll(&mut self, _now: BitInstant) -> Option<CanFrame> {
        None // an IDS observes; it cannot transmit a counterattack in time
    }

    fn on_frame(&mut self, frame: &CanFrame, now: BitInstant) {
        if self.frequency.observe(frame.id(), now) {
            self.alerts.push(Alert {
                at: now,
                id: frame.id(),
                kind: AlertKind::Frequency,
            });
        }
        if self.interval.observe(frame.id(), now) {
            self.alerts.push(Alert {
                at: now,
                id: frame.id(),
                kind: AlertKind::Interval,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(id: u16) -> CanFrame {
        CanFrame::data_frame(CanId::from_raw(id), &[0]).unwrap()
    }

    #[test]
    fn monitor_collects_alerts_from_both_detectors() {
        let mut monitor = IdsMonitor::new(FrequencyIds::new(2_000, 3), IntervalIds::new(2, 0.5));
        // Train the interval detector with clean 500-bit periods.
        for k in 0..4u64 {
            monitor.on_frame(&frame(0x100), BitInstant::from_bits(k * 500));
        }
        monitor.arm();
        // Now a flood of the same identifier trips both detectors.
        for k in 0..6u64 {
            monitor.on_frame(&frame(0x100), BitInstant::from_bits(2_000 + k * 130));
        }
        let kinds: Vec<AlertKind> = monitor.alerts().iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&AlertKind::Frequency));
        assert!(kinds.contains(&AlertKind::Interval));
        assert!(monitor.first_alert().is_some());
    }

    #[test]
    fn monitor_never_transmits() {
        let mut monitor = IdsMonitor::typical_500k();
        for t in 0..1_000 {
            assert!(monitor.poll(BitInstant::from_bits(t)).is_none());
        }
    }

    #[test]
    fn quiet_bus_raises_no_alerts() {
        let mut monitor = IdsMonitor::typical_500k();
        for k in 0..50u64 {
            monitor.on_frame(&frame(0x200), BitInstant::from_bits(k * 1_000));
        }
        assert!(monitor.alerts().is_empty());
    }
}

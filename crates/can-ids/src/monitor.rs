//! The IDS as a bus application: observes complete frames, raises
//! timestamped alerts — and can do nothing else, which is the point
//! (Table I: detection without eradication).

use can_core::app::Application;
use can_core::{BitInstant, CanFrame};

use crate::detector::Detector;
use crate::frequency::FrequencyIds;
use crate::interval::IntervalIds;

pub use crate::detector::{Alert, AlertKind};

/// A passive IDS node application composing any number of named
/// [`Detector`]s over the same frame stream.
///
/// Build with [`IdsMonitor::builder`]:
///
/// ```
/// use can_ids::{FrequencyIds, IdsMonitor, IntervalIds};
///
/// let monitor = IdsMonitor::builder()
///     .with("frequency", Box::new(FrequencyIds::new(5_000, 10)))
///     .with("interval", Box::new(IntervalIds::new(8, 0.5)))
///     .build();
/// assert_eq!(monitor.detector_names(), ["frequency", "interval"]);
/// ```
pub struct IdsMonitor {
    detectors: Vec<(String, Box<dyn Detector>)>,
    alerts: Vec<Alert>,
}

/// Builder for [`IdsMonitor`]: named detectors over the uniform
/// [`Detector`] trait, observed in insertion order.
#[derive(Default)]
#[must_use = "an IdsMonitorBuilder does nothing until `build` is called"]
pub struct IdsMonitorBuilder {
    detectors: Vec<(String, Box<dyn Detector>)>,
}

impl IdsMonitorBuilder {
    /// Adds a named detector. Names are free-form labels carried into
    /// [`IdsMonitor::detector_names`]; detectors observe every frame in
    /// insertion order.
    pub fn with(mut self, name: impl Into<String>, detector: Box<dyn Detector>) -> Self {
        self.detectors.push((name.into(), detector));
        self
    }

    /// Finishes the monitor.
    pub fn build(self) -> IdsMonitor {
        IdsMonitor {
            detectors: self.detectors,
            alerts: Vec::new(),
        }
    }
}

impl IdsMonitor {
    /// Starts an empty builder.
    pub fn builder() -> IdsMonitorBuilder {
        IdsMonitorBuilder::default()
    }

    /// Creates a monitor from the two classic detectors.
    #[deprecated(
        note = "use `IdsMonitor::builder().with(name, detector)` over the uniform `Detector` trait"
    )]
    pub fn new(frequency: FrequencyIds, interval: IntervalIds) -> Self {
        Self::builder()
            .with("frequency", Box::new(frequency))
            .with("interval", Box::new(interval))
            .build()
    }

    /// A typical configuration for a 500 kbit/s bus: 10 ms frequency
    /// window with a 10-frame threshold; interval training over 8 samples
    /// with ±50 % tolerance.
    pub fn typical_500k() -> Self {
        Self::builder()
            .with("frequency", Box::new(FrequencyIds::new(5_000, 10)))
            .with("interval", Box::new(IntervalIds::new(8, 0.5)))
            .build()
    }

    /// The configured detector names, in observation order.
    pub fn detector_names(&self) -> Vec<&str> {
        self.detectors
            .iter()
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// All alerts so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The first alert, if any — the IDS's detection instant.
    pub fn first_alert(&self) -> Option<&Alert> {
        self.alerts.first()
    }

    /// Arms every trainable detector (ends training).
    pub fn arm(&mut self) {
        for (_, detector) in &mut self.detectors {
            detector.arm();
        }
    }
}

impl Application for IdsMonitor {
    fn poll(&mut self, _now: BitInstant) -> Option<CanFrame> {
        None // an IDS observes; it cannot transmit a counterattack in time
    }

    fn on_frame(&mut self, frame: &CanFrame, now: BitInstant) {
        for (_, detector) in &mut self.detectors {
            if let Some(alert) = detector.observe(frame, now) {
                self.alerts.push(alert);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_core::CanId;

    fn frame(id: u16) -> CanFrame {
        CanFrame::data_frame(CanId::from_raw(id), &[0]).unwrap()
    }

    #[test]
    fn monitor_collects_alerts_from_both_detectors() {
        let mut monitor = IdsMonitor::builder()
            .with("frequency", Box::new(FrequencyIds::new(2_000, 3)))
            .with("interval", Box::new(IntervalIds::new(2, 0.5)))
            .build();
        // Train the interval detector with clean 500-bit periods.
        for k in 0..4u64 {
            monitor.on_frame(&frame(0x100), BitInstant::from_bits(k * 500));
        }
        monitor.arm();
        // Now a flood of the same identifier trips both detectors.
        for k in 0..6u64 {
            monitor.on_frame(&frame(0x100), BitInstant::from_bits(2_000 + k * 130));
        }
        let kinds: Vec<AlertKind> = monitor.alerts().iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&AlertKind::Frequency));
        assert!(kinds.contains(&AlertKind::Interval));
        assert!(monitor.first_alert().is_some());
    }

    #[test]
    fn deprecated_positional_constructor_still_works() {
        #[allow(deprecated)]
        let monitor = IdsMonitor::new(FrequencyIds::new(2_000, 3), IntervalIds::new(2, 0.5));
        assert_eq!(monitor.detector_names(), ["frequency", "interval"]);
    }

    #[test]
    fn builder_composes_any_detector_mix() {
        use crate::cusum::CusumIds;
        use crate::entropy::EntropyIds;
        use crate::zscore::ZScoreIds;

        let mut monitor = IdsMonitor::builder()
            .with("cusum", Box::new(CusumIds::new(4, 8.0)))
            .with("zscore", Box::new(ZScoreIds::new(4, 6.0)))
            .with("entropy", Box::new(EntropyIds::new(8, 400)))
            .build();
        assert_eq!(monitor.detector_names(), ["cusum", "zscore", "entropy"]);
        for k in 0..30u64 {
            monitor.on_frame(&frame(0x100), BitInstant::from_bits(k * 600));
        }
        monitor.arm();
        assert!(monitor.alerts().is_empty(), "clean traffic stays quiet");
        // A flood compresses intervals and collapses entropy.
        let mut t = 30 * 600;
        for _ in 0..20 {
            t += 100;
            monitor.on_frame(&frame(0x100), BitInstant::from_bits(t));
        }
        let kinds: Vec<AlertKind> = monitor.alerts().iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&AlertKind::Cusum));
        assert!(kinds.contains(&AlertKind::ZScore));
    }

    #[test]
    fn monitor_never_transmits() {
        let mut monitor = IdsMonitor::typical_500k();
        for t in 0..1_000 {
            assert!(monitor.poll(BitInstant::from_bits(t)).is_none());
        }
    }

    #[test]
    fn quiet_bus_raises_no_alerts() {
        let mut monitor = IdsMonitor::typical_500k();
        for k in 0..50u64 {
            monitor.on_frame(&frame(0x200), BitInstant::from_bits(k * 1_000));
        }
        assert!(monitor.alerts().is_empty());
    }
}

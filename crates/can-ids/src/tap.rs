//! Detectors as passive bus taps.
//!
//! [`DetectorTap`] adapts any [`Detector`] to `can_sim`'s
//! [`FrameTap`](can_sim::FrameTap) attachment point, so N detectors can
//! observe one simulated bus in a single run without occupying nodes.
//! The tap is a cheap-clone shared handle (the `Recorder`/`Journal`
//! idiom): a bench keeps one clone for reading results while a second
//! clone is boxed into [`can_sim::SimBuilder::tap`], avoiding any
//! downcasting to get alerts back out of the simulator.
//!
//! The tap adds the run-level concerns the detector itself should not
//! carry:
//!
//! * **Scheduled arming** — [`DetectorTap::with_arm_at`] ends training at
//!   a fixed sim time: the first observed frame at or after the deadline
//!   arms the detector before being judged. Arming is frame-driven, so it
//!   is byte-identical across lockstep/fast-forward/packed.
//! * **can-obs metrics** — `ids_frames_observed_total` /
//!   `ids_alerts_total` counters labeled by detector variant.
//! * **Journal emission** — every alert lands in the causal
//!   [`Journal`](can_obs::Journal) as a [`can_obs::JK_IDS_ALERT`] event at
//!   the triggering frame's completion bit, inheriting that frame's
//!   `frame_seq`/`chain_id` so alert chains reconstruct.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use can_core::{BitInstant, CanFrame};
use can_obs::{Journal, Recorder, JK_IDS_ALERT, JK_IDS_ARMED};
use can_sim::FrameTap;

use crate::detector::{Alert, Detector, IdsPhase};

struct TapState {
    label: String,
    detector: Box<dyn Detector>,
    /// Pending scheduled arming deadline, in bits.
    arm_at: Option<u64>,
    /// Completion times of every observed frame.
    observed: Vec<u64>,
    alerts: Vec<Alert>,
    recorder: Option<Recorder>,
    frames_key: String,
    alerts_key: String,
    journal: Option<(Journal, u32)>,
}

/// A [`Detector`] attached to the bus as a passive frame tap.
///
/// Cloning shares the underlying state: results read from any clone.
#[derive(Clone)]
pub struct DetectorTap {
    state: Rc<RefCell<TapState>>,
}

impl fmt::Debug for DetectorTap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.borrow();
        f.debug_struct("DetectorTap")
            .field("label", &state.label)
            .field("observed", &state.observed.len())
            .field("alerts", &state.alerts.len())
            .finish()
    }
}

impl DetectorTap {
    /// Wraps a detector under a stable variant label (used in metric
    /// series and journal details).
    pub fn new(label: impl Into<String>, detector: Box<dyn Detector>) -> Self {
        let label = label.into();
        let frames_key = format!("ids_frames_observed_total{{detector=\"{label}\"}}");
        let alerts_key = format!("ids_alerts_total{{detector=\"{label}\"}}");
        DetectorTap {
            state: Rc::new(RefCell::new(TapState {
                label,
                detector,
                arm_at: None,
                observed: Vec::new(),
                alerts: Vec::new(),
                recorder: None,
                frames_key,
                alerts_key,
                journal: None,
            })),
        }
    }

    /// Schedules training to end at `at_bits`: the first frame completing
    /// at or after the deadline arms the detector before being judged.
    pub fn with_arm_at(self, at_bits: u64) -> Self {
        self.state.borrow_mut().arm_at = Some(at_bits);
        self
    }

    /// Attaches a metrics recorder for the per-variant counters.
    pub fn with_recorder(self, recorder: Recorder) -> Self {
        self.state.borrow_mut().recorder = Some(recorder);
        self
    }

    /// Attaches a causal journal; alert events are stamped with `node`
    /// (a pseudo-node id for the observer, conventionally one past the
    /// bus's real nodes).
    pub fn with_journal(self, journal: Journal, node: u32) -> Self {
        self.state.borrow_mut().journal = Some((journal, node));
        self
    }

    /// A second handle boxed for [`can_sim::SimBuilder::tap`].
    pub fn as_frame_tap(&self) -> Box<dyn FrameTap> {
        Box::new(self.clone())
    }

    /// The variant label.
    pub fn label(&self) -> String {
        self.state.borrow().label.clone()
    }

    /// The detector's current phase.
    pub fn phase(&self) -> IdsPhase {
        self.state.borrow().detector.phase()
    }

    /// All alerts so far.
    pub fn alerts(&self) -> Vec<Alert> {
        self.state.borrow().alerts.clone()
    }

    /// Frames observed so far.
    pub fn frames_observed(&self) -> u64 {
        self.state.borrow().observed.len() as u64
    }

    /// Frames observed with completion time in `[from_bits, to_bits)`.
    pub fn frames_observed_in(&self, from_bits: u64, to_bits: u64) -> u64 {
        self.state
            .borrow()
            .observed
            .iter()
            .filter(|&&t| t >= from_bits && t < to_bits)
            .count() as u64
    }

    /// Alerts raised with completion time in `[from_bits, to_bits)`.
    pub fn alerts_in(&self, from_bits: u64, to_bits: u64) -> u64 {
        self.state
            .borrow()
            .alerts
            .iter()
            .filter(|a| a.at.bits() >= from_bits && a.at.bits() < to_bits)
            .count() as u64
    }

    /// Completion time of the first alert at or after `from_bits`.
    pub fn first_alert_at_or_after(&self, from_bits: u64) -> Option<u64> {
        self.state
            .borrow()
            .alerts
            .iter()
            .map(|a| a.at.bits())
            .find(|&t| t >= from_bits)
    }
}

impl FrameTap for DetectorTap {
    fn on_frame(&mut self, frame: &CanFrame, now: BitInstant) {
        let state = &mut *self.state.borrow_mut();
        if let Some(deadline) = state.arm_at {
            if now.bits() >= deadline {
                state.arm_at = None;
                if state.detector.phase() == IdsPhase::Training {
                    state.detector.arm();
                    if let Some((journal, node)) = &state.journal {
                        journal.event(now.bits(), *node, JK_IDS_ARMED, &state.label);
                    }
                }
            }
        }
        state.observed.push(now.bits());
        if let Some(recorder) = &state.recorder {
            recorder.inc(&state.frames_key);
        }
        if let Some(alert) = state.detector.observe(frame, now) {
            if let Some(recorder) = &state.recorder {
                recorder.inc(&state.alerts_key);
            }
            if let Some((journal, node)) = &state.journal {
                let detail = format!(
                    "{} {} id=0x{:03X}",
                    state.label,
                    alert.kind.label(),
                    alert.id.raw()
                );
                journal.event(now.bits(), *node, JK_IDS_ALERT, &detail);
            }
            state.alerts.push(alert);
        }
    }

    fn next_activity(&self, now: BitInstant) -> Option<BitInstant> {
        self.state.borrow().detector.next_activity(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zscore::ZScoreIds;
    use can_core::CanId;

    fn frame(id: u16) -> CanFrame {
        CanFrame::data_frame(CanId::from_raw(id), &[0]).unwrap()
    }

    #[test]
    fn shared_handle_reads_what_the_boxed_clone_observed() {
        let tap = DetectorTap::new("zscore[test]", Box::new(ZScoreIds::new(2, 6.0)));
        let mut boxed = tap.as_frame_tap();
        for k in 0..4u64 {
            boxed.on_frame(&frame(0x100), BitInstant::from_bits(k * 600));
        }
        assert_eq!(tap.frames_observed(), 4);
        assert_eq!(tap.phase(), IdsPhase::Armed, "auto-armed after training");
        // 100-bit interval against a learned 600-bit period: far outside
        // the 6σ band (σ floor = 30 bits).
        boxed.on_frame(&frame(0x100), BitInstant::from_bits(3 * 600 + 100));
        assert_eq!(tap.alerts().len(), 1, "compressed interval alerts");
        assert_eq!(tap.first_alert_at_or_after(0), Some(3 * 600 + 100));
    }

    #[test]
    fn scheduled_arming_fires_on_the_first_frame_past_the_deadline() {
        let journal = Journal::enabled();
        let tap = DetectorTap::new("zscore[test]", Box::new(ZScoreIds::new(50, 6.0)))
            .with_arm_at(2_000)
            .with_journal(journal.clone(), 9);
        let mut boxed = tap.as_frame_tap();
        for k in 0..3u64 {
            boxed.on_frame(&frame(0x100), BitInstant::from_bits(k * 600));
        }
        assert_eq!(tap.phase(), IdsPhase::Training, "deadline not reached");
        boxed.on_frame(&frame(0x100), BitInstant::from_bits(2_300));
        assert_eq!(tap.phase(), IdsPhase::Armed, "armed at the deadline");
        let export = journal.export_jsonl();
        assert!(export.contains(JK_IDS_ARMED), "arming journaled: {export}");
    }

    #[test]
    fn metrics_and_journal_wiring_emit_per_variant_series() {
        let recorder = Recorder::enabled();
        let journal = Journal::enabled();
        let tap = DetectorTap::new("zscore[train=2,z=6]", Box::new(ZScoreIds::new(2, 6.0)))
            .with_recorder(recorder.clone())
            .with_journal(journal.clone(), 9);
        let mut boxed = tap.as_frame_tap();
        for k in 0..4u64 {
            boxed.on_frame(&frame(0x100), BitInstant::from_bits(k * 600));
        }
        boxed.on_frame(&frame(0x100), BitInstant::from_bits(3 * 600 + 50));
        recorder
            .with_registry(|registry| {
                assert_eq!(
                    registry.counter("ids_frames_observed_total{detector=\"zscore[train=2,z=6]\"}"),
                    5
                );
                assert_eq!(
                    registry.counter("ids_alerts_total{detector=\"zscore[train=2,z=6]\"}"),
                    1
                );
            })
            .unwrap();
        let export = journal.export_jsonl();
        assert!(export.contains(JK_IDS_ALERT), "alert journaled: {export}");
        assert!(export.contains("zscore"), "label in detail: {export}");
    }
}

//! Property tests for the IDS baselines: no false positives on compliant
//! periodic traffic; guaranteed detection of sufficiently aggressive
//! floods.

use can_core::{BitInstant, CanId};
use can_ids::{FrequencyIds, IntervalIds};
use proptest::prelude::*;

proptest! {
    /// Periodic traffic below the frequency threshold never alerts,
    /// regardless of period, phase and identifier.
    #[test]
    fn frequency_ids_has_no_false_positives(
        raw in 0u16..=CanId::MAX_RAW,
        period in 600u64..10_000,
        phase in 0u64..5_000,
        window in 1_000u64..20_000,
    ) {
        // Threshold chosen above the max frames/window for this period.
        let threshold = (window / period + 2) as usize;
        let mut ids = FrequencyIds::new(window, threshold);
        for k in 0..200u64 {
            let alert = ids.observe(
                CanId::from_raw(raw),
                BitInstant::from_bits(phase + k * period),
            );
            prop_assert!(!alert, "false positive at frame {}", k);
        }
    }

    /// A flood always alerts within threshold+1 frames, for any window and
    /// threshold configuration it physically fits in.
    #[test]
    fn frequency_ids_always_catches_floods(
        raw in 0u16..=CanId::MAX_RAW,
        threshold in 2usize..40,
        frame_gap in 100u64..140,
    ) {
        let window = (threshold as u64 + 2) * 140;
        let mut ids = FrequencyIds::new(window, threshold);
        let mut alerted_at = None;
        for k in 0..(threshold as u64 + 4) {
            if ids.observe(CanId::from_raw(raw), BitInstant::from_bits(k * frame_gap)) {
                alerted_at = Some(k);
                break;
            }
        }
        prop_assert_eq!(
            alerted_at,
            Some(threshold as u64),
            "the (threshold+1)-th frame in the window must alert"
        );
    }

    /// The interval detector accepts jitter strictly inside its tolerance
    /// band and flags intervals strictly outside it.
    #[test]
    fn interval_ids_band_is_respected(
        period in 500u64..5_000,
        tolerance in 0.2f64..0.8,
    ) {
        let mut ids = IntervalIds::new(4, tolerance);
        // Train with observations at 0, period, …, 5·period.
        let mut last = 0u64;
        for k in 0..6u64 {
            last = k * period;
            ids.observe(CanId::from_raw(0x100), BitInstant::from_bits(last));
        }
        ids.arm();

        // Inside the band: accepted.
        let inside = (period as f64 * (1.0 + tolerance * 0.5)) as u64;
        last += inside;
        prop_assert!(!ids.observe(CanId::from_raw(0x100), BitInstant::from_bits(last)));

        // Far outside the band: flagged.
        let outside = (period as f64 * (1.0 + tolerance * 3.0)) as u64;
        last += outside;
        prop_assert!(ids.observe(CanId::from_raw(0x100), BitInstant::from_bits(last)));
    }
}

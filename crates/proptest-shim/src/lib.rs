//! Offline vendored subset of the `proptest` API.
//!
//! The build environment of this repository has no access to crates.io, so
//! this workspace-local crate reimplements the slice of proptest the test
//! suites use: the [`proptest!`] and `prop_assert*` macros, the
//! [`Strategy`] trait with `prop_map`, [`any`], integer/float range
//! strategies, tuple strategies and the `collection::{vec, btree_set,
//! btree_map}` combinators.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: every test derives its RNG seed from the test's
//!   module path and name, so a failing case reproduces on every run (the
//!   moral equivalent of a committed proptest regression file).
//! * **No shrinking**: a failing case reports its inputs via the assertion
//!   message but is not minimized.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use rand::rngs::StdRng;
pub use rand::SeedableRng;
use rand::{Rng, RngCore};

/// Per-proptest-block configuration (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert*` inside a test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Derives a stable 64-bit seed from a test's fully qualified name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical full-domain strategy (subset of upstream's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_bits {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_via_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.random()
    }
}

/// The full-domain strategy for `T` (use as `any::<u8>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// A collection-size specification, converted from `usize` ranges (mirrors
/// upstream's `SizeRange` so `1..32` literals infer `usize`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, StdRng, Strategy};
    use std::collections::{BTreeMap, BTreeSet};

    /// A `Vec` strategy with the given element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` strategy: draws elements until the target size is
    /// reached (bounded retries for small domains).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < n && attempts < n.saturating_mul(20) + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// A `BTreeMap` strategy keyed by distinct draws of `key`.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// The strategy returned by [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < n && attempts < n.saturating_mul(20) + 100 {
                let k = self.key.generate(rng);
                let v = self.value.generate(rng);
                map.insert(k, v);
                attempts += 1;
            }
            map
        }
    }
}

/// Everything a proptest-style test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut __proptest_rng = <$crate::StdRng as $crate::SeedableRng>::seed_from_u64(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(err) = outcome {
                    panic!(
                        "proptest {} failed at case {case}/{}: {err}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_for("a::b"), seed_for("a::b"));
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
    }

    #[test]
    fn strategies_generate_in_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (0u16..=0x7FF).generate(&mut rng);
            assert!(v <= 0x7FF);
            let xs = collection::vec(any::<u8>(), 0..=8usize).generate(&mut rng);
            assert!(xs.len() <= 8);
            let set = collection::btree_set(0u16..=0x7FF, 2usize..12).generate(&mut rng);
            assert!((2..12).contains(&set.len()));
            let (a, b) = (0u8..4, 10u8..14).generate(&mut rng);
            assert!(a < 4 && (10..14).contains(&b));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = StdRng::seed_from_u64(2);
        let doubled = (0u16..10).prop_map(|v| v * 2).generate(&mut rng);
        assert!(doubled < 20 && doubled % 2 == 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, asserts pass, early return works.
        #[test]
        fn macro_roundtrip(x in 0u16..100, ys in collection::vec(any::<bool>(), 0..4)) {
            if ys.is_empty() {
                return Ok(());
            }
            prop_assert!(x < 100, "x in range: {}", x);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(x as usize, 1_000);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u16..10) {
                prop_assert!(false, "forced failure with x = {}", x);
            }
        }
        always_fails();
    }
}

//! Graceful degradation end-to-end: the supervised defender drops to
//! detect-only mode when its own substrate misbehaves, re-arms with
//! capped exponential backoff once the substrate is clean, and never
//! loads the bus anywhere near the Parrot baseline while doing so.
//!
//! Two substrate faults are injected through the agent seam, exactly
//! where real hardware fails:
//!
//! * a **muted transmit pin** — the handler believes it is injecting,
//!   but nothing reaches the wire, so every counterattack fails;
//! * a **flaky bit interrupt** — every other `on_bit` tick is swallowed,
//!   so the watchdog sees timestamp gaps (missed ticks).

use std::cell::RefCell;
use std::ops::Range;
use std::rc::Rc;

use bench::busload::parrot_theoretical_flood_load;
use can_attacks::{DosKind, SuspensionAttacker};
use can_core::agent::BitAgent;
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BitInstant, BusSpeed, CanFrame, CanId, Level};
use can_sim::{EventKind, Node, SimBuilder, Simulator};
use michican::health::DegradeReason;
use michican::prelude::*;

const ATTACK_ID: u16 = 0x041;

fn frame(id: u16, data: &[u8]) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
}

/// Shared handle to the supervised defender so its statistics stay
/// readable after the simulator consumes the boxed agent.
#[derive(Clone)]
struct Shared(Rc<RefCell<SupervisedMichiCan>>);

/// The defender with its transmit pin muted during `window`: detection
/// and injection logic run, but no dominant bit reaches the bus — the
/// counterattack silently fails, as with a marginal transceiver.
struct MutedTxPin {
    inner: Shared,
    window: Range<u64>,
    now: u64,
}

impl BitAgent for MutedTxPin {
    fn on_bit(&mut self, level: Level, now: BitInstant) {
        self.now = now.bits();
        self.inner.0.borrow_mut().on_bit(level, now);
    }

    fn tx_level(&self) -> Option<Level> {
        if self.window.contains(&self.now) {
            None
        } else {
            self.inner.0.borrow().tx_level()
        }
    }

    fn set_own_transmission(&mut self, transmitting: bool) {
        self.inner.0.borrow_mut().set_own_transmission(transmitting);
    }
}

/// The defender with every other bit interrupt swallowed during
/// `window`: the wrapped watchdog sees timestamp gaps on each tick that
/// does arrive.
struct FlakyBitInterrupt {
    inner: Shared,
    window: Range<u64>,
    parity: bool,
}

impl BitAgent for FlakyBitInterrupt {
    fn on_bit(&mut self, level: Level, now: BitInstant) {
        self.parity = !self.parity;
        if self.window.contains(&now.bits()) && self.parity {
            return; // interrupt lost
        }
        self.inner.0.borrow_mut().on_bit(level, now);
    }

    fn tx_level(&self) -> Option<Level> {
        self.inner.0.borrow().tx_level()
    }

    fn set_own_transmission(&mut self, transmitting: bool) {
        self.inner.0.borrow_mut().set_own_transmission(transmitting);
    }
}

/// Benign restbus + monitor + a monitor-mode supervised defender whose
/// agent is built by `wrap`; optionally a saturating DoS attacker.
fn supervised_bus(
    config: HealthConfig,
    attack: bool,
    wrap: impl FnOnce(Shared) -> Box<dyn BitAgent>,
) -> (Simulator, Shared, Option<usize>) {
    let speed = BusSpeed::K500;
    let list = EcuList::from_raw(&[0x0B0, 0x240]);
    let shared = Shared(Rc::new(RefCell::new(SupervisedMichiCan::new(
        MichiCan::new(DetectionFsm::for_monitor(&list)),
        config,
        SyncConfig::typical(speed),
    ))));
    let mut builder = SimBuilder::new(speed)
        .node(Node::new(
            "ecu-b0",
            Box::new(PeriodicSender::new(frame(0x0B0, &[0x55; 8]), 600, 0)),
        ))
        .node(Node::new(
            "ecu-240",
            Box::new(PeriodicSender::new(frame(0x240, &[0xAA; 8]), 900, 333)),
        ))
        .node(Node::new("michican", Box::new(SilentApplication)).with_agent(wrap(shared.clone())));
    let mut attacker = None;
    if attack {
        attacker = Some(builder.node_id());
        builder = builder.node(Node::new(
            "attacker",
            Box::new(
                SuspensionAttacker::saturating(DosKind::Targeted {
                    id: CanId::from_raw(ATTACK_ID),
                })
                .with_payload(&[0xFF; 8]),
            ),
        ));
    }
    (builder.build(), shared, attacker)
}

#[test]
fn repeated_counterattack_failure_degrades_then_rearms_with_backoff() {
    let fault_window = 4_000u64..24_000;
    let run_bits = 60_000u64;
    // Exponent capped at 2 so the final re-arm (≤ 32 clean frames)
    // completes well inside the run.
    let config = HealthConfig {
        max_backoff_exponent: 2,
        ..HealthConfig::default()
    };
    let (mut sim, defender, attacker) = supervised_bus(config, true, |shared| {
        Box::new(MutedTxPin {
            inner: shared,
            window: fault_window.clone(),
            now: 0,
        })
    });
    sim.run(run_bits);

    let supervised = defender.0.borrow();
    let stats = supervised.stats();

    // The muted pin made counterattacks fail repeatedly; the watchdog
    // noticed (the attacked frame survived the injection window) and fell
    // back to detect-only mode — more than once, since each re-arm inside
    // the fault window failed again, doubling the requirement.
    assert!(
        stats.counterattack_failures >= config.max_counterattack_failures as u64,
        "failures: {}",
        stats.counterattack_failures
    );
    assert!(
        stats.degradations >= 2,
        "degradations: {}",
        stats.degradations
    );
    assert!(
        stats
            .degrade_reasons
            .iter()
            .all(|r| *r == DegradeReason::CounterattackFailures),
        "reasons: {:?}",
        stats.degrade_reasons
    );
    // Backoff cycle: it re-armed between degradations and after the fault
    // cleared, and ended the run armed with prevention working again.
    assert!(stats.rearms >= 2, "rearms: {}", stats.rearms);
    assert_eq!(supervised.state(), HealthState::Armed);
    assert!(
        stats.counterattack_successes > 0,
        "post-fault injections work"
    );

    // Detect-only mode let attack frames through (prevention was off),
    // but only while the substrate was faulted: once re-armed, the
    // defender eradicated the attacker again.
    let attack_during_fault = sim
        .events()
        .iter()
        .filter(|e| {
            matches!(&e.kind, EventKind::FrameReceived { frame } if frame.id().raw() == ATTACK_ID)
                && fault_window.contains(&e.at.bits())
        })
        .count();
    let attack_late = sim
        .events()
        .iter()
        .filter(|e| {
            matches!(&e.kind, EventKind::FrameReceived { frame } if frame.id().raw() == ATTACK_ID)
                && e.at.bits() >= 40_000
        })
        .count();
    assert!(attack_during_fault > 0, "detect-only must not block frames");
    assert_eq!(
        attack_late, 0,
        "re-armed defender lets no attack frame through"
    );
    let eradications = sim
        .events()
        .iter()
        .filter(|e| Some(e.node) == attacker && matches!(e.kind, EventKind::BusOff))
        .count();
    assert!(eradications >= 1, "the attacker must end up bused off");

    // Acceptance bound: even at its busiest the supervised defender stays
    // far below Parrot, which floods the bus with whole spoofed frames.
    let parrot = parrot_theoretical_flood_load();
    let duty = supervised.handler().stats().counterattacks as f64 * 8.0 / run_bits as f64;
    assert!(
        duty < parrot,
        "defender duty {duty:.3} vs parrot {parrot:.3}"
    );
    assert!(
        config.max_injection_duty() < parrot,
        "the episode budget cap itself must sit below the Parrot floor"
    );
}

#[test]
fn missed_bit_interrupts_degrade_to_detect_only_and_recover() {
    let fault_window = 6_000u64..20_000;
    let run_bits = 40_000u64;
    let config = HealthConfig::default();
    let (mut sim, defender, _) = supervised_bus(config, false, |shared| {
        Box::new(FlakyBitInterrupt {
            inner: shared,
            window: fault_window.clone(),
            parity: false,
        })
    });
    sim.run(run_bits);

    let supervised = defender.0.borrow();
    let stats = supervised.stats();

    // The tick gaps were seen and crossed the window threshold once;
    // while the interrupt stayed flaky the watchdog stayed degraded
    // (frames spanning a fault are not clean), then recovered.
    assert!(stats.missed_ticks > 0, "gaps must be observed");
    assert!(
        stats.degradations >= 1,
        "degradations: {}",
        stats.degradations
    );
    assert!(
        stats.degrade_reasons.contains(&DegradeReason::MissedTicks),
        "reasons: {:?}",
        stats.degrade_reasons
    );
    assert!(stats.rearms >= 1, "rearms: {}", stats.rearms);
    assert_eq!(
        supervised.state(),
        HealthState::Armed,
        "recovered after the fault"
    );

    // A defender with a broken clock must not have disturbed the benign
    // bus: traffic flowed throughout, and whatever it did emit stays far
    // below the Parrot baseline.
    let delivered_late = sim
        .events()
        .iter()
        .filter(|e| {
            matches!(e.kind, EventKind::FrameReceived { .. }) && e.at.bits() >= fault_window.end
        })
        .count();
    assert!(
        delivered_late > 20,
        "traffic after recovery: {delivered_late}"
    );
    let duty = supervised.handler().stats().counterattacks as f64 * 8.0 / run_bits as f64;
    assert!(duty < parrot_theoretical_flood_load());
}

//! Differential tests for the parallel experiment engine's determinism
//! contract (`bench::runner`): for any master seed, the report produced
//! with N worker shards must be *byte-identical* to the serial (shards=1)
//! reference — seeds derive from cell index, never completion order, and
//! results reduce in index order.

use bench::campaign::{run_campaign, CampaignConfig};
use bench::detection::run_sweep_with_sizes_sharded;
use bench::scenarios::{run_multi_attacker_scan, run_table2};

const MASTER_SEEDS: [u64; 3] = [0x00D5_2025, 42, 0xDEAD_BEEF];
const SHARD_COUNTS: [usize; 2] = [2, 8];

#[test]
fn campaign_report_is_byte_identical_across_shard_counts() {
    for seed in MASTER_SEEDS {
        let serial = run_campaign(&CampaignConfig {
            seed,
            run_ms: 30.0,
            shards: 1,
        })
        .render();
        for shards in SHARD_COUNTS {
            let parallel = run_campaign(&CampaignConfig {
                seed,
                run_ms: 30.0,
                shards,
            })
            .render();
            assert_eq!(
                parallel, serial,
                "campaign report diverged: seed={seed:#x} shards={shards}"
            );
        }
    }
}

#[test]
fn fsm_sweep_summary_is_identical_across_shard_counts() {
    for seed in MASTER_SEEDS {
        let serial = run_sweep_with_sizes_sharded(120, seed, 50, 150, 1);
        let serial_text = format!("{serial:?}");
        for shards in SHARD_COUNTS {
            let parallel = run_sweep_with_sizes_sharded(120, seed, 50, 150, shards);
            assert_eq!(
                parallel, serial,
                "sweep summary diverged: seed={seed:#x} shards={shards}"
            );
            assert_eq!(
                format!("{parallel:?}"),
                serial_text,
                "sweep summary rendering diverged: seed={seed:#x} shards={shards}"
            );
        }
    }
}

#[test]
fn table2_outcomes_are_identical_across_shard_counts() {
    let serial = run_table2(200.0, 1);
    for shards in SHARD_COUNTS {
        let parallel = run_table2(200.0, shards);
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.experiment.number, s.experiment.number);
            assert_eq!(p.per_attacker, s.per_attacker, "shards={shards}");
            assert_eq!(p.bus_load, s.bus_load, "shards={shards}");
        }
    }
}

#[test]
fn multi_attacker_scan_is_identical_across_shard_counts() {
    let counts = [1usize, 2, 3];
    let serial = run_multi_attacker_scan(&counts, 20_000, 1);
    for shards in SHARD_COUNTS {
        assert_eq!(
            run_multi_attacker_scan(&counts, 20_000, shards),
            serial,
            "shards={shards}"
        );
    }
}

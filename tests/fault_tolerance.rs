//! Fault-injection validation of the paper's false-positive argument
//! (§IV-E): "although MichiCAN could potentially flag a legitimate node as
//! an attacker due to a bit flip, a node needs to encounter 32 consecutive
//! errors for the TEC to reach a level that would trigger a bus-off
//! condition. In case of sporadic errors, the likelihood of hitting this
//! threshold is near zero."

use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId, ErrorState};
use can_sim::{EventKind, FaultModel, Node, SimBuilder, Simulator};
use michican::prelude::*;

fn frame(id: u16, data: &[u8]) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
}

/// A benign bus (two senders + their defenders) under channel noise.
fn noisy_benign_bus(fault: FaultModel, bits: u64) -> Simulator {
    let list = EcuList::from_raw(&[0x0B0, 0x240]);
    let mut sim = SimBuilder::new(BusSpeed::K500)
        .node(
            Node::new(
                "ecu-b0",
                Box::new(PeriodicSender::new(frame(0x0B0, &[0x55; 8]), 600, 0)),
            )
            .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
        )
        .node(
            Node::new(
                "ecu-240",
                Box::new(PeriodicSender::new(frame(0x240, &[0xAA; 8]), 900, 333)),
            )
            .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 1)))),
        )
        .node(Node::new("rx", Box::new(SilentApplication)))
        .fault(fault)
        .build();
    sim.run(bits);
    sim
}

#[test]
fn sporadic_bit_flips_never_bus_off_a_legitimate_node() {
    // 1e-4 BER is an extremely hostile channel for CAN (automotive links
    // run many orders of magnitude better); even there, errors are
    // interspersed with successful transmissions that decrement the TEC,
    // and no node approaches bus-off.
    let sim = noisy_benign_bus(FaultModel::random(1e-4, 99), 200_000);
    for node in 0..sim.node_count() {
        assert_ne!(
            sim.node(node).controller().error_state(),
            ErrorState::BusOff,
            "node {node} must never be eradicated by channel noise"
        );
    }
    // Errors did happen (the channel is active)...
    let errors = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ErrorDetected { .. }))
        .count();
    assert!(errors > 0, "the fault model must actually disturb the bus");
    // ...but traffic kept flowing.
    let delivered = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FrameReceived { .. }))
        .count();
    assert!(delivered > 300, "traffic flows through noise: {delivered}");
}

#[test]
fn single_scripted_glitch_is_absorbed() {
    // One flipped bit mid-frame: the frame is destroyed and retransmitted
    // once; TEC returns to zero after a handful of successes.
    let mut sim = SimBuilder::new(BusSpeed::K500)
        .node(Node::new(
            "sender",
            Box::new(PeriodicSender::new(frame(0x123, &[0x42; 8]), 400, 0)),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        // Bit 60 lands inside the first frame's data field.
        .fault(FaultModel::scripted(vec![60]))
        .build();
    sim.run(8_000);

    let errors = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ErrorDetected { .. }))
        .count();
    assert!(errors >= 1, "the glitch must be detected");
    let successes = sim
        .events()
        .iter()
        .filter(|e| e.node == 0 && matches!(e.kind, EventKind::TransmissionSucceeded { .. }))
        .count();
    assert!(successes >= 15, "the stream recovers: {successes}");
    assert_eq!(
        sim.node(0).controller().counters().tec(),
        0,
        "TEC drains back to zero after the retransmission"
    );
    assert_ne!(sim.node(0).controller().error_state(), ErrorState::BusOff);
}

#[test]
fn glitch_during_identifier_does_not_trigger_a_counterattack_cascade() {
    // A dominant glitch inside a benign identifier can make it look
    // momentarily malicious; the stuff/CRC machinery destroys the frame
    // anyway, the sender retransmits, and one spurious counterattack at
    // most costs one extra retransmission — never an eradication.
    let list = EcuList::from_raw(&[0x100, 0x1F0]);
    let builder = SimBuilder::new(BusSpeed::K500);
    let sender = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "sender-0x1F0",
            Box::new(PeriodicSender::new(frame(0x1F0, &[0x11; 8]), 500, 0)),
        ))
        .node(
            Node::new("defender-0x100", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
        )
        .node(Node::new("rx", Box::new(SilentApplication)))
        // Flip one identifier bit of the first frame (bits 1..12 carry the
        // id; recessive->dominant makes the observed id numerically
        // smaller, i.e. potentially inside the defender's DoS range).
        .fault(FaultModel::scripted(vec![4]))
        .build();
    sim.run(30_000);

    assert_ne!(
        sim.node(sender).controller().error_state(),
        ErrorState::BusOff,
        "a single glitch must never escalate to eradication"
    );
    let successes = sim
        .events()
        .iter()
        .filter(|e| e.node == sender && matches!(e.kind, EventKind::TransmissionSucceeded { .. }))
        .count();
    assert!(successes >= 50, "the benign stream continues: {successes}");
}

#[test]
fn attack_is_still_eradicated_through_a_noisy_channel() {
    // The defense keeps working under channel noise: the attacker's TEC
    // ladder is driven by ~32 deliberate injections, dwarfing noise.
    let list = EcuList::from_raw(&[0x173]);
    let builder = SimBuilder::new(BusSpeed::K500);
    let attacker = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "attacker",
            Box::new(PeriodicSender::new(frame(0x050, &[0; 8]), 300, 0)),
        ))
        .node(
            Node::new("defender", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
        )
        .fault(FaultModel::random(5e-5, 7))
        .build();
    let hit = sim.run_until(20_000, |e| matches!(e.kind, EventKind::BusOff));
    assert!(hit.is_some(), "eradication must succeed despite noise");
    let episodes = can_sim::bus_off_episodes(sim.events(), attacker);
    assert!(!episodes.is_empty());
}

// ---------------------------------------------------------------------------
// Property: sporadic fault schedules below the §IV-E threshold are harmless.
// ---------------------------------------------------------------------------

use proptest::prelude::*;

/// Runs the benign bus under `fault` and asserts no node reached bus-off.
fn assert_no_benign_bus_off(fault: FaultModel, context: &str) {
    let sim = noisy_benign_bus(fault, 60_000);
    for node in 0..sim.node_count() {
        assert_ne!(
            sim.node(node).controller().error_state(),
            ErrorState::BusOff,
            "{context}: node {node} reached bus-off"
        );
    }
    let delivered = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FrameReceived { .. }))
        .count();
    assert!(delivered > 50, "{context}: traffic starved ({delivered})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// §IV-E: any iid bit-error rate at automotive magnitudes (here up to
    /// 1e-4, orders above real links) never walks a benign TEC to 256 —
    /// errors are interspersed with successes that decrement it.
    #[test]
    fn sporadic_iid_noise_never_reaches_bus_off(
        seed in any::<u64>(),
        ber_millionths in 0u32..=100,
    ) {
        let ber = ber_millionths as f64 * 1e-6;
        assert_no_benign_bus_off(
            FaultModel::random(ber, seed),
            &format!("iid ber={ber:.1e} seed={seed}"),
        );
    }

    /// Any *scripted* sporadic schedule — flips at least 128 bits apart, so
    /// each error frame resolves before the next hit — is equally harmless.
    #[test]
    fn sporadic_scripted_schedules_never_reach_bus_off(
        gaps in proptest::collection::vec(128u64..1_500, 0..40),
        start in 0u64..500,
    ) {
        let mut at = start;
        let mut flips = Vec::with_capacity(gaps.len());
        for gap in gaps {
            at += gap;
            flips.push(at);
        }
        assert_no_benign_bus_off(
            FaultModel::scripted(flips.clone()),
            &format!("scripted {} flips from {start}", flips.len()),
        );
    }
}

// ---------------------------------------------------------------------------
// Regression: scripted flips landing exactly on frame-boundary bits.
// ---------------------------------------------------------------------------

use can_core::bitstream::{stuff_frame, FrameField, FrameLayout};

/// Locates the first frame's SOF instant on a clean single-sender bus.
fn first_sof_instant() -> u64 {
    let mut sim = SimBuilder::new(BusSpeed::K500)
        .node(Node::new(
            "sender",
            Box::new(PeriodicSender::new(frame(0x123, &[0x42; 8]), 400, 0)),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .trace()
        .build();
    sim.run(200);
    sim.trace()
        .expect("trace enabled")
        .levels()
        .iter()
        .position(|l| l.is_dominant())
        .expect("a frame starts within 200 bits") as u64
}

/// Runs the single-sender bus with one scripted flip and asserts graceful
/// recovery: the error is absorbed, traffic continues, nobody buses off.
fn assert_boundary_flip_absorbed(flip_at: u64, boundary: &str) {
    let builder = SimBuilder::new(BusSpeed::K500);
    let sender = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "sender",
            Box::new(PeriodicSender::new(frame(0x123, &[0x42; 8]), 400, 0)),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .fault(FaultModel::scripted(vec![flip_at]))
        .build();
    sim.run(12_000);

    assert_ne!(
        sim.node(sender).controller().error_state(),
        ErrorState::BusOff,
        "{boundary}: one glitch must never eradicate the sender"
    );
    let delivered = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FrameReceived { .. }))
        .count();
    assert!(delivered >= 20, "{boundary}: stream starved ({delivered})");
    assert_eq!(
        sim.node(sender).controller().counters().tec(),
        0,
        "{boundary}: TEC must drain back to zero"
    );
}

#[test]
fn flip_on_the_sof_bit_is_absorbed() {
    // SOF forced recessive: the transmitter sees a bit error on its very
    // first driven bit; receivers never see a frame start.
    assert_boundary_flip_absorbed(first_sof_instant(), "SOF");
}

#[test]
fn flip_on_the_ack_slot_is_absorbed() {
    // ACK forced recessive: the transmitter sees no acknowledgement and
    // must signal an ACK error, then retransmit.
    let f = frame(0x123, &[0x42; 8]);
    let wire = stuff_frame(&f);
    let ack_offset =
        (FrameLayout::of(&f).span(FrameField::AckSlot).start + wire.stuff_count()) as u64;
    assert_boundary_flip_absorbed(first_sof_instant() + ack_offset, "ACK slot");
}

#[test]
fn flip_on_the_last_eof_bit_is_absorbed() {
    // Dominant at EOF[6]: receivers tolerate it (the frame is already
    // valid); the transmitter treats it as an error and may retransmit.
    // Either way the stream must continue undisturbed.
    let f = frame(0x123, &[0x42; 8]);
    let wire = stuff_frame(&f);
    let eof_last = (FrameLayout::of(&f).span(FrameField::Eof).end - 1 + wire.stuff_count()) as u64;
    assert_boundary_flip_absorbed(first_sof_instant() + eof_last, "EOF last bit");
}

#[test]
fn flip_mid_eof_is_absorbed() {
    // Dominant at EOF[2] is a form error for everyone; the frame is
    // destroyed and retransmitted.
    let f = frame(0x123, &[0x42; 8]);
    let wire = stuff_frame(&f);
    let eof_mid = (FrameLayout::of(&f).span(FrameField::Eof).start + 2 + wire.stuff_count()) as u64;
    assert_boundary_flip_absorbed(first_sof_instant() + eof_mid, "EOF mid");
}

//! End-to-end property tests across the whole stack: for *any* attack
//! shape in the detection range, eradication follows the same 32-attempt
//! ladder; for any benign configuration, nothing is ever flagged.

use can_core::agent::BitAgent;
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::bitstream::stuff_frame;
use can_core::{BusSpeed, CanFrame, CanId, Level};
use can_sim::{bus_off_episodes, EventKind, Node, SimBuilder};
use michican::analysis::depth_profile;
use michican::detect::detection_range;
use michican::prelude::*;
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..=8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any attacker identifier below the defender's own, with any payload,
    /// is bused off in exactly 32 attempts within the theoretical
    /// envelope.
    #[test]
    fn any_dos_shape_is_eradicated(
        attacker_raw in 0u16..0x173,
        payload in arb_payload(),
    ) {
        let frame = CanFrame::data_frame(CanId::from_raw(attacker_raw), &payload).unwrap();
        let list = EcuList::from_raw(&[0x173]);
        let builder = SimBuilder::new(BusSpeed::K500);
        let attacker = builder.node_id();
        let mut sim = builder
            .node(Node::new(
                "attacker",
                Box::new(PeriodicSender::new(frame, 400, 0)),
            ))
            .node(
                Node::new("defender", Box::new(SilentApplication))
                    .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
            )
            .build();
        let hit = sim.run_until(8_000, |e| matches!(e.kind, EventKind::BusOff));
        prop_assert!(hit.is_some(), "attacker 0x{attacker_raw:03X} must be bused off");
        let ep = &bus_off_episodes(sim.events(), attacker)[0];
        prop_assert_eq!(ep.attempts, 32);
        let bits = ep.duration().as_bits();
        prop_assert!(
            (1_000..=1_500).contains(&bits),
            "episode {} bits outside the envelope", bits
        );
        // No attack frame ever completed.
        let any_delivered = sim
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::FrameReceived { .. }));
        prop_assert!(!any_delivered);
    }

    /// Benign traffic with any identifier NOT in the defender's detection
    /// range flows without a single error.
    #[test]
    fn any_benign_id_flows_untouched(
        sender_raw in 0x174u16..=CanId::MAX_RAW,
        payload in arb_payload(),
    ) {
        let frame = CanFrame::data_frame(CanId::from_raw(sender_raw), &payload).unwrap();
        let list = EcuList::from_raw(&[0x173]);
        let mut sim = SimBuilder::new(BusSpeed::K500)
            .node(Node::new(
                "benign",
                Box::new(PeriodicSender::new(frame, 400, 0)),
            ))
            .node(
                Node::new("defender", Box::new(SilentApplication))
                    .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
            )
            .build();
        sim.run(4_000);
        let any_errors = sim
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::ErrorDetected { .. }));
        prop_assert!(!any_errors);
        let delivered = sim
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FrameReceived { .. }))
            .count();
        prop_assert!(delivered >= 5, "traffic must flow: {}", delivered);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The handler's counterattack decision agrees with the FSM's
    /// classification for every frame shape: feeding a frame's exact wire
    /// bits to the handler injects iff the FSM says malicious.
    #[test]
    fn handler_agrees_with_fsm(
        id_raw in 0u16..=CanId::MAX_RAW,
        payload in arb_payload(),
        list_seed in proptest::collection::btree_set(0u16..=CanId::MAX_RAW, 1..12),
    ) {
        let ids: Vec<CanId> = list_seed.into_iter().map(CanId::from_raw).collect();
        let list = EcuList::new(ids).unwrap();
        let fsm = DetectionFsm::for_ecu(&list, list.len() - 1);
        let expected = fsm.classify(CanId::from_raw(id_raw));

        let mut handler = MichiCan::new(fsm);
        let frame = CanFrame::data_frame(CanId::from_raw(id_raw), &payload).unwrap();
        let wire = stuff_frame(&frame);
        let mut t = 0u64;
        for _ in 0..12 {
            handler.on_bit(Level::Recessive, can_core::BitInstant::from_bits(t));
            t += 1;
        }
        let mut injected = false;
        for &bit in &wire.bits {
            let seen = if handler.is_injecting() { Level::Dominant } else { bit };
            handler.on_bit(seen, can_core::BitInstant::from_bits(t));
            injected |= handler.is_injecting();
            t += 1;
        }
        prop_assert_eq!(injected, expected,
            "handler/FSM divergence for id 0x{:03X}", id_raw);
    }

    /// Analytic depth profile equals the exhaustive walk for random
    /// detection ranges.
    #[test]
    fn depth_profile_is_exact(
        list_seed in proptest::collection::btree_set(0u16..=CanId::MAX_RAW, 2..24),
        pick in any::<u8>(),
    ) {
        let ids: Vec<CanId> = list_seed.into_iter().map(CanId::from_raw).collect();
        let list = EcuList::new(ids).unwrap();
        let index = pick as usize % list.len();
        let set = detection_range(&list, index);
        let fsm = DetectionFsm::from_set(&set);
        let profile = depth_profile(&fsm);

        let mut sum = 0u64;
        let mut count = 0u64;
        for id in CanId::all() {
            if fsm.classify(id) {
                sum += fsm.decision_position(id) as u64;
                count += 1;
            }
        }
        prop_assert_eq!(profile.malicious_ids, count);
        if count > 0 {
            prop_assert!(
                (profile.mean_malicious_depth - sum as f64 / count as f64).abs() < 1e-9
            );
        }
        prop_assert_eq!(count as usize, set.len());
    }

    /// candump logs round-trip arbitrary frames.
    #[test]
    fn candump_round_trip(
        entries in proptest::collection::vec(
            (0u16..=CanId::MAX_RAW, arb_payload(), 0.0f64..10_000.0),
            0..40,
        )
    ) {
        use can_trace::{parse_log, write_log, LogEntry};
        let log: Vec<LogEntry> = entries
            .into_iter()
            .map(|(raw, payload, ts)| LogEntry {
                timestamp_s: (ts * 1e6).round() / 1e6, // candump precision
                interface: "vcan0".to_string(),
                frame: CanFrame::data_frame(CanId::from_raw(raw), &payload).unwrap(),
            })
            .collect();
        let text = write_log(&log);
        let parsed = parse_log(&text).unwrap();
        prop_assert_eq!(parsed, log);
    }

    /// Mini-DBC emit/parse round-trips arbitrary matrices.
    #[test]
    fn dbc_round_trip(
        defs in proptest::collection::btree_map(
            0u16..=CanId::MAX_RAW,
            (1u32..5_000, 0u8..=8),
            1..32,
        )
    ) {
        use restbus::dbc::{emit_dbc, parse_dbc};
        use restbus::{CommMatrix, Message};
        let messages: Vec<Message> = defs
            .into_iter()
            .enumerate()
            .map(|(i, (raw, (period, dlc)))| Message {
                id: CanId::from_raw(raw),
                period_ms: period,
                dlc,
                sender: format!("ecu{i}"),
                name: format!("MSG_{raw:03X}"),
            })
            .collect();
        let matrix = CommMatrix::new("prop", BusSpeed::K500, messages);
        let parsed = parse_dbc("prop", BusSpeed::K500, &emit_dbc(&matrix)).unwrap();
        prop_assert_eq!(parsed.messages(), matrix.messages());
    }
}

//! Property coverage for the bit-level adversary zoo: for *arbitrary*
//! victim payloads, strike parameters and phase offsets,
//!
//! * the victim's error counters follow CAN error confinement — a
//!   transmitter whose every attempt is destroyed on the wire reaches
//!   bus-off in exactly 32 attempts (TEC +8 per bit/form error), never
//!   more, never fewer; and
//! * lockstep, idle fast-forward and the packed bus kernel stay
//!   byte-identical even though the attacker intervenes mid-frame — i.e.
//!   in the middle of what the packed kernel would otherwise resolve as
//!   one 64-bit word.

use bench::differential::check_equivalence;
use can_attacks::{FrameTruncator, StuffBitOverwrite, TruncateAt};
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId};
use can_obs::Recorder;
use can_sim::{bus_off_episodes, Node, SimBuilder, Simulator};
use proptest::prelude::*;

const VICTIM_ID: u16 = 0x173;
const PERIOD_BITS: u64 = 600;

/// A three-node zoo bus: periodic victim, one bit-level attacker, silent
/// receiver. Returns the simulator and the victim's node id.
fn build_bus(
    payload: &[u8],
    offset: u64,
    agent: Box<dyn can_core::agent::BitAgent>,
    recorder: Recorder,
) -> (Simulator, usize) {
    let victim = CanId::from_raw(VICTIM_ID);
    let frame = CanFrame::data_frame(victim, payload).unwrap();
    let builder = SimBuilder::new(BusSpeed::K500).recorder(recorder);
    let victim_node = builder.node_id();
    let sim = builder
        .node(Node::new(
            "victim",
            Box::new(PeriodicSender::new(frame, PERIOD_BITS, offset)),
        ))
        .node(Node::new("attacker", Box::new(SilentApplication)).with_agent(agent))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    (sim, victim_node)
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..=8)
}

fn arb_truncate_at() -> impl Strategy<Value = TruncateAt> {
    (0u8..3).prop_map(|i| match i {
        0 => TruncateAt::CrcDelim,
        1 => TruncateAt::AckDelim,
        _ => TruncateAt::Eof,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Stuff-bit overwrite and error confinement: whether or not the
    /// random payload offers an overwritable stuff bit, every bus-off
    /// episode the victim suffers must span exactly 32 destroyed attempts,
    /// and the victim's TEC must stay within the error-confinement range.
    #[test]
    fn stuff_overwrite_victims_follow_error_confinement(
        payload in arb_payload(),
        skip in 0u32..3,
        offset in 0u64..400,
    ) {
        let attacker = StuffBitOverwrite::new(CanId::from_raw(VICTIM_ID), skip);
        let (mut sim, victim_node) =
            build_bus(&payload, offset, Box::new(attacker), Recorder::disabled());
        sim.run(60_000);
        for episode in bus_off_episodes(sim.events(), victim_node) {
            prop_assert_eq!(
                episode.attempts, 32,
                "TEC +8 per destroyed attempt reaches 256 in exactly 32 attempts"
            );
        }
        prop_assert!(sim.node(victim_node).controller().counters().tec() <= 256);
    }

    /// Frame truncation and error confinement, at every fixed-form
    /// boundary the truncator knows about.
    #[test]
    fn truncated_victims_follow_error_confinement(
        payload in arb_payload(),
        at in arb_truncate_at(),
        offset in 0u64..400,
    ) {
        let attacker = FrameTruncator::new(CanId::from_raw(VICTIM_ID), at);
        let (mut sim, victim_node) =
            build_bus(&payload, offset, Box::new(attacker), Recorder::disabled());
        sim.run(60_000);
        let episodes = bus_off_episodes(sim.events(), victim_node);
        prop_assert!(
            !episodes.is_empty(),
            "a fixed-form strike needs no stuff bits: every attempt dies"
        );
        for episode in episodes {
            prop_assert_eq!(episode.attempts, 32);
        }
        prop_assert!(sim.node(victim_node).controller().counters().tec() <= 256);
    }

    /// Mid-word intervention differential: a stuff-bit overwrite lands
    /// deep inside a frame body — unaligned territory the packed kernel
    /// would otherwise resolve as whole 64-bit words — and all three
    /// execution modes must still agree on every observable surface.
    #[test]
    fn lockstep_equals_packed_under_stuff_overwrite(
        payload in arb_payload(),
        skip in 0u32..3,
        offset in 0u64..400,
    ) {
        check_equivalence(
            |recorder| {
                let attacker = StuffBitOverwrite::new(CanId::from_raw(VICTIM_ID), skip);
                build_bus(&payload, offset, Box::new(attacker), recorder).0
            },
            20_000,
        )
        .unwrap();
    }

    /// Same differential for the truncator, whose strike position (late in
    /// the frame, at a fixed-form boundary) exercises stretch capping at
    /// the opposite end of the frame from the stuff-bit overwrite.
    #[test]
    fn lockstep_equals_packed_under_truncation(
        payload in arb_payload(),
        at in arb_truncate_at(),
        offset in 0u64..400,
    ) {
        check_equivalence(
            |recorder| {
                let attacker = FrameTruncator::new(CanId::from_raw(VICTIM_ID), at);
                build_bus(&payload, offset, Box::new(attacker), recorder).0
            },
            20_000,
        )
        .unwrap();
    }
}

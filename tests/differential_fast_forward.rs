//! Differential proof of the accelerated-core byte-identity guarantees:
//! every scenario family is driven once in lockstep, once under idle
//! fast-forward and once under the packed bus kernel, and every observable
//! surface — events, signal trace, metrics snapshot, outcome — must match
//! byte for byte across all three modes.

use bench::campaign::{run_campaign_with, CampaignConfig};
use bench::differential::{check_equivalence, check_outcome, fingerprint};
use bench::runner::ExecOpts;
use bench::scenarios::{
    build_experiment_with, run_multi_attacker_scan_with, run_parksense_with, run_table2_with,
    table2_experiments,
};
use can_obs::Recorder;

fn lockstep(recorder: &Recorder) -> ExecOpts {
    ExecOpts::new().with_recorder(recorder.clone())
}

fn fast(recorder: &Recorder) -> ExecOpts {
    ExecOpts::new().with_recorder(recorder.clone()).fast()
}

fn packed(recorder: &Recorder) -> ExecOpts {
    ExecOpts::new().with_recorder(recorder.clone()).packed()
}

#[test]
fn every_table2_cell_is_bit_identical_under_acceleration() {
    // Cell-level fingerprints: clock, busy bits, event log, metrics.
    for exp in table2_experiments() {
        check_equivalence(
            |recorder| build_experiment_with(&exp, &ExecOpts::new().with_recorder(recorder)).0,
            25_000,
        )
        .unwrap_or_else(|divergence| {
            panic!("experiment {}: {divergence}", exp.number);
        });
    }
}

#[test]
fn table2_report_and_metrics_are_identical_under_acceleration() {
    // Outcome-level: the full (reduced-capture) Table II report plus the
    // merged metrics snapshot.
    let lock_recorder = Recorder::enabled();
    let lock = run_table2_with(400.0, &lockstep(&lock_recorder));
    let fast_recorder = Recorder::enabled();
    let ff = run_table2_with(400.0, &fast(&fast_recorder));
    check_outcome("table2 fast-forward", &lock, &ff).unwrap();
    assert_eq!(
        lock_recorder.snapshot_json(),
        fast_recorder.snapshot_json(),
        "table2 metrics snapshot diverged under fast-forward"
    );
    let packed_recorder = Recorder::enabled();
    let pk = run_table2_with(400.0, &packed(&packed_recorder));
    check_outcome("table2 packed", &lock, &pk).unwrap();
    assert_eq!(
        lock_recorder.snapshot_json(),
        packed_recorder.snapshot_json(),
        "table2 metrics snapshot diverged under the packed kernel"
    );
}

#[test]
fn campaign_report_and_metrics_are_identical_under_acceleration() {
    let config = CampaignConfig {
        seed: 0x00D5_2025,
        run_ms: 30.0,
        shards: 1,
    };
    let lock_recorder = Recorder::enabled();
    let lock = run_campaign_with(&config, &lockstep(&lock_recorder));
    let fast_recorder = Recorder::enabled();
    let ff = run_campaign_with(&config, &fast(&fast_recorder));
    assert_eq!(lock, ff, "campaign report diverged under fast-forward");
    assert_eq!(
        lock_recorder.snapshot_json(),
        fast_recorder.snapshot_json(),
        "campaign metrics snapshot diverged under fast-forward"
    );
    let packed_recorder = Recorder::enabled();
    let pk = run_campaign_with(&config, &packed(&packed_recorder));
    assert_eq!(lock, pk, "campaign report diverged under the packed kernel");
    assert_eq!(
        lock_recorder.snapshot_json(),
        packed_recorder.snapshot_json(),
        "campaign metrics snapshot diverged under the packed kernel"
    );
}

#[test]
fn multi_attacker_scan_is_identical_under_acceleration() {
    let counts = [1usize, 2, 3];
    let lock_recorder = Recorder::enabled();
    let lock = run_multi_attacker_scan_with(&counts, 60_000, &lockstep(&lock_recorder));
    let fast_recorder = Recorder::enabled();
    let ff = run_multi_attacker_scan_with(&counts, 60_000, &fast(&fast_recorder));
    assert_eq!(lock, ff, "multi-attacker scan diverged under fast-forward");
    assert_eq!(
        lock_recorder.snapshot_json(),
        fast_recorder.snapshot_json(),
        "multi-attacker metrics snapshot diverged under fast-forward"
    );
    let packed_recorder = Recorder::enabled();
    let pk = run_multi_attacker_scan_with(&counts, 60_000, &packed(&packed_recorder));
    assert_eq!(
        lock, pk,
        "multi-attacker scan diverged under the packed kernel"
    );
    assert_eq!(
        lock_recorder.snapshot_json(),
        packed_recorder.snapshot_json(),
        "multi-attacker metrics snapshot diverged under the packed kernel"
    );
    // The scan must actually resolve (all attackers eradicated) for the
    // comparison to mean anything.
    assert!(lock.iter().all(|(_, bits)| bits.is_some()));
}

#[test]
fn parksense_outcomes_are_identical_under_acceleration() {
    for defended in [false, true] {
        let lock_recorder = Recorder::enabled();
        let lock = run_parksense_with(defended, 40.0, &lockstep(&lock_recorder));
        let fast_recorder = Recorder::enabled();
        let ff = run_parksense_with(defended, 40.0, &fast(&fast_recorder));
        check_outcome(
            &format!("parksense fast-forward defended={defended}"),
            &lock,
            &ff,
        )
        .unwrap();
        assert_eq!(
            lock_recorder.snapshot_json(),
            fast_recorder.snapshot_json(),
            "parksense metrics snapshot diverged under fast-forward (defended={defended})"
        );
        let packed_recorder = Recorder::enabled();
        let pk = run_parksense_with(defended, 40.0, &packed(&packed_recorder));
        check_outcome(&format!("parksense packed defended={defended}"), &lock, &pk).unwrap();
        assert_eq!(
            lock_recorder.snapshot_json(),
            packed_recorder.snapshot_json(),
            "parksense metrics snapshot diverged under the packed kernel (defended={defended})"
        );
    }
}

#[test]
fn fingerprints_capture_trace_surfaces() {
    // A traced, noisy, attacked bus: the fingerprint must carry the trace
    // surfaces and the two modes must still agree on all of them.
    use can_core::app::{PeriodicSender, SilentApplication};
    use can_core::{BusSpeed, CanFrame, CanId};
    use can_sim::{FaultModel, Node, SimBuilder};
    use michican::prelude::*;

    let build = |recorder: Recorder| {
        let frame = CanFrame::data_frame(CanId::from_raw(0x064), &[0xAB; 8]).unwrap();
        let list = EcuList::from_raw(&[0x173]);
        SimBuilder::new(BusSpeed::K500)
            .recorder(recorder)
            .node(Node::new(
                "attacker",
                Box::new(PeriodicSender::new(frame, 2_500, 0)),
            ))
            .node(
                Node::new("defender", Box::new(SilentApplication))
                    .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
            )
            .fault(FaultModel::random(1e-4, 0xFF00))
            .trace()
            .build()
    };

    check_equivalence(build, 40_000).unwrap();

    // And the fingerprint itself records the trace (guards against the
    // comparison silently degrading to a trace-free check).
    let recorder = Recorder::enabled();
    let mut sim = build(recorder.clone());
    sim.run(5_000);
    let fp = fingerprint(&sim, &recorder);
    assert_eq!(fp.trace_recorded, Some(5_000));
    assert_eq!(fp.trace.as_ref().map(Vec::len), Some(5_000));
    assert!(!fp.events.is_empty());
}

//! Differential proof of the accelerated-core byte-identity guarantees:
//! every scenario family is driven once in lockstep, once under idle
//! fast-forward and once under the packed bus kernel, and every observable
//! surface — events, signal trace, metrics snapshot, outcome — must match
//! byte for byte across all three modes.

use bench::attackzoo::{build_zoo_cell, run_zoo_with, zoo_cells, ZooCell};
use bench::campaign::{run_campaign_with, CampaignConfig};
use bench::differential::{check_equivalence, check_outcome, fingerprint};
use bench::runner::ExecOpts;
use bench::scenarios::{
    build_experiment_with, run_multi_attacker_scan_with, run_parksense_with, run_table2_with,
    table2_experiments,
};
use can_obs::{parse_export, Journal, Recorder, JK_DETECTION, JK_FRAME_ERROR, JK_INJECT_START};

fn lockstep(recorder: &Recorder) -> ExecOpts {
    ExecOpts::new().with_recorder(recorder.clone())
}

fn fast(recorder: &Recorder) -> ExecOpts {
    ExecOpts::new().with_recorder(recorder.clone()).fast()
}

fn packed(recorder: &Recorder) -> ExecOpts {
    ExecOpts::new().with_recorder(recorder.clone()).packed()
}

#[test]
fn every_table2_cell_is_bit_identical_under_acceleration() {
    // Cell-level fingerprints: clock, busy bits, event log, metrics.
    for exp in table2_experiments() {
        check_equivalence(
            |recorder| build_experiment_with(&exp, &ExecOpts::new().with_recorder(recorder)).0,
            25_000,
        )
        .unwrap_or_else(|divergence| {
            panic!("experiment {}: {divergence}", exp.number);
        });
    }
}

#[test]
fn table2_report_and_metrics_are_identical_under_acceleration() {
    // Outcome-level: the full (reduced-capture) Table II report plus the
    // merged metrics snapshot.
    let lock_recorder = Recorder::enabled();
    let lock = run_table2_with(400.0, &lockstep(&lock_recorder));
    let fast_recorder = Recorder::enabled();
    let ff = run_table2_with(400.0, &fast(&fast_recorder));
    check_outcome("table2 fast-forward", &lock, &ff).unwrap();
    assert_eq!(
        lock_recorder.snapshot_json(),
        fast_recorder.snapshot_json(),
        "table2 metrics snapshot diverged under fast-forward"
    );
    let packed_recorder = Recorder::enabled();
    let pk = run_table2_with(400.0, &packed(&packed_recorder));
    check_outcome("table2 packed", &lock, &pk).unwrap();
    assert_eq!(
        lock_recorder.snapshot_json(),
        packed_recorder.snapshot_json(),
        "table2 metrics snapshot diverged under the packed kernel"
    );
}

#[test]
fn campaign_report_and_metrics_are_identical_under_acceleration() {
    let config = CampaignConfig {
        seed: 0x00D5_2025,
        run_ms: 30.0,
        shards: 1,
    };
    let lock_recorder = Recorder::enabled();
    let lock = run_campaign_with(&config, &lockstep(&lock_recorder));
    let fast_recorder = Recorder::enabled();
    let ff = run_campaign_with(&config, &fast(&fast_recorder));
    assert_eq!(lock, ff, "campaign report diverged under fast-forward");
    assert_eq!(
        lock_recorder.snapshot_json(),
        fast_recorder.snapshot_json(),
        "campaign metrics snapshot diverged under fast-forward"
    );
    let packed_recorder = Recorder::enabled();
    let pk = run_campaign_with(&config, &packed(&packed_recorder));
    assert_eq!(lock, pk, "campaign report diverged under the packed kernel");
    assert_eq!(
        lock_recorder.snapshot_json(),
        packed_recorder.snapshot_json(),
        "campaign metrics snapshot diverged under the packed kernel"
    );
}

#[test]
fn multi_attacker_scan_is_identical_under_acceleration() {
    let counts = [1usize, 2, 3];
    let lock_recorder = Recorder::enabled();
    let lock = run_multi_attacker_scan_with(&counts, 60_000, &lockstep(&lock_recorder));
    let fast_recorder = Recorder::enabled();
    let ff = run_multi_attacker_scan_with(&counts, 60_000, &fast(&fast_recorder));
    assert_eq!(lock, ff, "multi-attacker scan diverged under fast-forward");
    assert_eq!(
        lock_recorder.snapshot_json(),
        fast_recorder.snapshot_json(),
        "multi-attacker metrics snapshot diverged under fast-forward"
    );
    let packed_recorder = Recorder::enabled();
    let pk = run_multi_attacker_scan_with(&counts, 60_000, &packed(&packed_recorder));
    assert_eq!(
        lock, pk,
        "multi-attacker scan diverged under the packed kernel"
    );
    assert_eq!(
        lock_recorder.snapshot_json(),
        packed_recorder.snapshot_json(),
        "multi-attacker metrics snapshot diverged under the packed kernel"
    );
    // The scan must actually resolve (all attackers eradicated) for the
    // comparison to mean anything.
    assert!(lock.iter().all(|(_, bits)| bits.is_some()));
}

#[test]
fn parksense_outcomes_are_identical_under_acceleration() {
    for defended in [false, true] {
        let lock_recorder = Recorder::enabled();
        let lock = run_parksense_with(defended, 40.0, &lockstep(&lock_recorder));
        let fast_recorder = Recorder::enabled();
        let ff = run_parksense_with(defended, 40.0, &fast(&fast_recorder));
        check_outcome(
            &format!("parksense fast-forward defended={defended}"),
            &lock,
            &ff,
        )
        .unwrap();
        assert_eq!(
            lock_recorder.snapshot_json(),
            fast_recorder.snapshot_json(),
            "parksense metrics snapshot diverged under fast-forward (defended={defended})"
        );
        let packed_recorder = Recorder::enabled();
        let pk = run_parksense_with(defended, 40.0, &packed(&packed_recorder));
        check_outcome(&format!("parksense packed defended={defended}"), &lock, &pk).unwrap();
        assert_eq!(
            lock_recorder.snapshot_json(),
            packed_recorder.snapshot_json(),
            "parksense metrics snapshot diverged under the packed kernel (defended={defended})"
        );
    }
}

#[test]
fn every_zoo_cell_is_bit_identical_under_acceleration() {
    // The adversary-zoo differential pin: every registry attack variant ×
    // every defense, fingerprinted (clock, busy bits, events, metrics)
    // across lockstep, fast-forward and the packed kernel. Bit-level
    // attackers exercise the BitAgent drive_horizon/skip_idle seams under
    // mid-frame intervention, which is exactly where the accelerated
    // kernels are most likely to diverge.
    let cells = zoo_cells();
    assert!(cells.len() >= 36, "registry shrank: {} cells", cells.len());
    for cell in cells {
        check_equivalence(|recorder| build_zoo_cell(&cell, recorder).sim, 20_000).unwrap_or_else(
            |divergence| {
                panic!(
                    "zoo cell {} vs {}: {divergence}",
                    cell.variant.label(),
                    cell.defense.label()
                );
            },
        );
    }
}

#[test]
fn zoo_table_is_identical_across_modes_and_shards() {
    // Outcome-level pin: the full per-attack outcome table and the merged
    // metrics snapshot must be byte-identical in all three modes and at
    // any shard count (`experiments attacks --attacks all --shards N`).
    let run = |opts: ExecOpts| {
        let recorder = Recorder::enabled();
        let outcomes = run_zoo_with(zoo_cells(), 20_000, &opts.with_recorder(recorder.clone()));
        (outcomes, recorder.snapshot_json())
    };
    let (lock, lock_snapshot) = run(ExecOpts::new());
    for (label, opts) in [
        ("fast-forward", ExecOpts::new().fast()),
        ("packed", ExecOpts::new().packed()),
        ("4 shards", ExecOpts::new().with_shards(4)),
        ("packed + 3 shards", ExecOpts::new().packed().with_shards(3)),
    ] {
        let (outcomes, snapshot) = run(opts);
        assert_eq!(lock, outcomes, "zoo outcomes diverged under {label}");
        assert_eq!(
            lock_snapshot, snapshot,
            "zoo metrics snapshot diverged under {label}"
        );
    }
    let table = bench::attackzoo::render_zoo_table(&lock);
    bench::attackzoo::assert_zoo_coverage(&lock);
    for cell in zoo_cells() {
        assert!(
            table.contains(&cell.variant.label()),
            "table is missing {}",
            cell.variant.label()
        );
    }
}

#[test]
fn zoo_cells_cover_every_registry_variant_against_every_defense() {
    use can_attacks::registry::all_variants;
    let cells = zoo_cells();
    let variants = all_variants();
    assert_eq!(cells.len(), variants.len() * 3);
    for variant in &variants {
        let defenses: Vec<&str> = cells
            .iter()
            .filter(|c: &&ZooCell| c.variant.label() == variant.label())
            .map(|c| c.defense.label())
            .collect();
        assert_eq!(
            defenses,
            ["none", "michican", "parrot"],
            "{}",
            variant.label()
        );
    }
}

// ---------------------------------------------------------------------------
// Causal journal determinism (DESIGN.md §13): the canonical export must be
// byte-identical across all three SimModes and at any shard count, for
// every scenario family that runs under ExecOpts.
// ---------------------------------------------------------------------------

/// Runs `run` with an enabled journal in `opts` and returns the canonical
/// export.
fn journal_of(opts: ExecOpts, run: impl Fn(&ExecOpts)) -> String {
    let journal = Journal::enabled();
    run(&opts.with_journal(journal.clone()));
    journal.export_jsonl()
}

#[test]
fn table2_journal_is_byte_identical_across_modes_and_shards() {
    let run = |opts: ExecOpts| {
        journal_of(opts, |o| {
            run_table2_with(400.0, o);
        })
    };
    let base = run(ExecOpts::new());
    assert!(base.lines().count() > 1, "table2 journal must not be empty");
    for (label, opts) in [
        ("fast-forward", ExecOpts::new().fast()),
        ("packed", ExecOpts::new().packed()),
        ("4 shards", ExecOpts::new().with_shards(4)),
        ("packed + 4 shards", ExecOpts::new().packed().with_shards(4)),
    ] {
        assert_eq!(base, run(opts), "table2 journal diverged under {label}");
    }
}

#[test]
fn campaign_journal_is_byte_identical_across_modes_and_shards() {
    let run = |shards: usize, opts: ExecOpts| {
        let config = CampaignConfig {
            seed: 0x00D5_2025,
            run_ms: 30.0,
            shards,
        };
        journal_of(opts, |o| {
            run_campaign_with(&config, o);
        })
    };
    let base = run(1, ExecOpts::new());
    assert!(
        base.lines().count() > 1,
        "campaign journal must not be empty"
    );
    for (label, shards, opts) in [
        ("fast-forward", 1, ExecOpts::new().fast()),
        ("packed", 1, ExecOpts::new().packed()),
        ("4 shards", 4, ExecOpts::new()),
    ] {
        assert_eq!(
            base,
            run(shards, opts),
            "campaign journal diverged under {label}"
        );
    }
}

#[test]
fn multi_attacker_journal_is_byte_identical_across_modes_and_shards() {
    let run = |opts: ExecOpts| {
        journal_of(opts, |o| {
            run_multi_attacker_scan_with(&[1, 2, 3], 60_000, o);
        })
    };
    let base = run(ExecOpts::new());
    assert!(
        base.lines().count() > 1,
        "multi-attacker journal must not be empty"
    );
    for (label, opts) in [
        ("fast-forward", ExecOpts::new().fast()),
        ("packed", ExecOpts::new().packed()),
        ("4 shards", ExecOpts::new().with_shards(4)),
    ] {
        assert_eq!(
            base,
            run(opts),
            "multi-attacker journal diverged under {label}"
        );
    }
}

#[test]
fn parksense_journal_is_byte_identical_across_modes() {
    for defended in [false, true] {
        let run = |opts: ExecOpts| {
            journal_of(opts, |o| {
                run_parksense_with(defended, 40.0, o);
            })
        };
        let base = run(ExecOpts::new());
        assert!(
            base.lines().count() > 1,
            "parksense journal must not be empty (defended={defended})"
        );
        for (label, opts) in [
            ("fast-forward", ExecOpts::new().fast()),
            ("packed", ExecOpts::new().packed()),
        ] {
            assert_eq!(
                base,
                run(opts),
                "parksense journal diverged under {label} (defended={defended})"
            );
        }
    }
}

#[test]
fn a_zoo_cell_reconstructs_the_attack_chain_by_chain_id() {
    // The acceptance pin for causal linkage: a fabrication attack against
    // MichiCAN must leave a chain in the journal that reads as one episode
    // — spoofed frame on the wire (frame_start opens the chain), the
    // defense spotting it (detection), the counterattack window opening
    // (inject_start) and the spoofed frame dying (frame_error), all under
    // one chain_id.
    let cell = zoo_cells()
        .into_iter()
        .find(|c| c.variant.label() == "fabrication[x2]" && c.defense.label() == "michican")
        .expect("fabrication vs michican cell in the registry");
    let journal = Journal::enabled();
    run_zoo_with(
        vec![cell],
        20_000,
        &ExecOpts::new().with_journal(journal.clone()),
    );
    let (events, dropped) = parse_export(&journal.export_jsonl()).unwrap();
    assert!(dropped.is_empty(), "journal dropped events: {dropped:?}");

    let mut chains: std::collections::BTreeMap<u64, Vec<&str>> = std::collections::BTreeMap::new();
    for event in &events {
        if event.chain_id != 0 {
            chains
                .entry(event.chain_id)
                .or_default()
                .push(event.kind.as_str());
        }
    }
    let complete = chains.values().any(|kinds| {
        [JK_DETECTION, JK_INJECT_START, JK_FRAME_ERROR]
            .iter()
            .all(|k| kinds.contains(k))
    });
    assert!(
        complete,
        "no chain links detection -> counterattack -> destroyed frame; chains: {chains:?}"
    );
}

// ---------------------------------------------------------------------------
// Timing-IDS bake-off differential pins: detector taps are passive and
// frame-driven, so attaching the full registry grid must not perturb the
// accelerated kernels — the outcome table, the metrics snapshot and the
// journal export all stay byte-identical across modes and shard counts.
// ---------------------------------------------------------------------------

#[test]
fn every_ids_cell_is_bit_identical_under_acceleration_with_taps_attached() {
    use bench::idsbench::{build_ids_cell, ids_cells};
    use can_ids::registry::all_variants;
    let detectors = all_variants();
    for cell in ids_cells() {
        check_equivalence(
            |recorder| build_ids_cell(&cell, &detectors, recorder).sim,
            20_000,
        )
        .unwrap_or_else(|divergence| {
            panic!(
                "ids cell {} vs {}: {divergence}",
                cell.scenario.label(),
                cell.defense.label()
            );
        });
    }
}

#[test]
fn ids_table_is_identical_across_modes_and_shards() {
    use bench::idsbench::{ids_cells, render_ids_table, run_ids_with};
    use can_ids::registry::all_variants;
    let run = |opts: ExecOpts| {
        let recorder = Recorder::enabled();
        let outcomes = run_ids_with(
            ids_cells(),
            all_variants(),
            20_000,
            &opts.with_recorder(recorder.clone()),
        );
        (outcomes, recorder.snapshot_json())
    };
    let (lock, lock_snapshot) = run(ExecOpts::new());
    for (label, opts) in [
        ("fast-forward", ExecOpts::new().fast()),
        ("packed", ExecOpts::new().packed()),
        ("4 shards", ExecOpts::new().with_shards(4)),
        ("packed + 3 shards", ExecOpts::new().packed().with_shards(3)),
    ] {
        let (outcomes, snapshot) = run(opts);
        assert_eq!(lock, outcomes, "ids outcomes diverged under {label}");
        assert_eq!(
            lock_snapshot, snapshot,
            "ids metrics snapshot diverged under {label}"
        );
    }
    bench::idsbench::assert_ids_honesty(&lock);
    let table = render_ids_table(&lock);
    for variant in all_variants() {
        assert!(
            table.contains(&variant.label()),
            "table is missing {}",
            variant.label()
        );
    }
}

#[test]
fn ids_journal_is_byte_identical_across_modes_and_shards() {
    use bench::idsbench::{ids_cells, run_ids_with};
    use can_ids::registry::all_variants;
    let run = |opts: ExecOpts| {
        journal_of(opts, |o| {
            run_ids_with(ids_cells(), all_variants(), 20_000, o);
        })
    };
    let base = run(ExecOpts::new());
    assert!(
        base.contains(can_obs::JK_IDS_ALERT),
        "ids journal must carry alert events"
    );
    for (label, opts) in [
        ("fast-forward", ExecOpts::new().fast()),
        ("packed", ExecOpts::new().packed()),
        ("4 shards", ExecOpts::new().with_shards(4)),
        ("packed + 4 shards", ExecOpts::new().packed().with_shards(4)),
    ] {
        assert_eq!(base, run(opts), "ids journal diverged under {label}");
    }
}

#[test]
fn fingerprints_capture_trace_surfaces() {
    // A traced, noisy, attacked bus: the fingerprint must carry the trace
    // surfaces and the two modes must still agree on all of them.
    use can_core::app::{PeriodicSender, SilentApplication};
    use can_core::{BusSpeed, CanFrame, CanId};
    use can_sim::{FaultModel, Node, SimBuilder};
    use michican::prelude::*;

    let build = |recorder: Recorder| {
        let frame = CanFrame::data_frame(CanId::from_raw(0x064), &[0xAB; 8]).unwrap();
        let list = EcuList::from_raw(&[0x173]);
        SimBuilder::new(BusSpeed::K500)
            .recorder(recorder)
            .node(Node::new(
                "attacker",
                Box::new(PeriodicSender::new(frame, 2_500, 0)),
            ))
            .node(
                Node::new("defender", Box::new(SilentApplication))
                    .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
            )
            .fault(FaultModel::random(1e-4, 0xFF00))
            .trace()
            .build()
    };

    check_equivalence(build, 40_000).unwrap();

    // And the fingerprint itself records the trace (guards against the
    // comparison silently degrading to a trace-free check).
    let recorder = Recorder::enabled();
    let mut sim = build(recorder.clone());
    sim.run(5_000);
    let fp = fingerprint(&sim, &recorder);
    assert_eq!(fp.trace_recorded, Some(5_000));
    assert_eq!(fp.trace.as_ref().map(Vec::len), Some(5_000));
    assert!(!fp.events.is_empty());
}

//! End-to-end coverage of the timing-IDS bake-off (`bench::idsbench`):
//! grid shape, the Table I honesty invariant measured on real cells, the
//! ported IDS-vs-MichiCAN flood pins, and the deprecated `ids_compare`
//! shims.

use bench::idsbench::{
    assert_ids_honesty, detector_grid_for, flood_ids_defense, flood_michican_defense, ids_cells,
    ids_scenarios, render_ids_table, run_ids_with, IdsScenario, IDS_HORIZON_BITS, ONE_FRAME_BITS,
};
use bench::runner::ExecOpts;
use can_ids::registry::{all_variants, detector_names};

const FLOOD_RUN: u64 = 40_000;

#[test]
fn grid_is_scenarios_times_defenses_with_every_detector_attached() {
    let scenarios = ids_scenarios();
    assert!(scenarios.contains(&IdsScenario::Clean));
    assert!(
        scenarios.len() >= 5,
        "clean + at least four attack families, got {}",
        scenarios.len()
    );
    let cells = ids_cells();
    assert_eq!(
        cells.len(),
        scenarios.len() * 3,
        "three defenses per scenario"
    );

    let outcomes = run_ids_with(
        cells.clone(),
        all_variants(),
        IDS_HORIZON_BITS,
        &ExecOpts::new(),
    );
    assert_eq!(outcomes.len(), cells.len());
    for outcome in &outcomes {
        assert_eq!(
            outcome.detectors.len(),
            all_variants().len(),
            "every registry detector observes every cell"
        );
    }

    // Table I, measured: frame-level detectors never undercut one whole
    // frame; MichiCAN's in-frame reaction always does.
    assert_ids_honesty(&outcomes);
    let michican_kills: Vec<u64> = outcomes
        .iter()
        .filter_map(|o| o.defense_latency_bits)
        .collect();
    assert!(
        !michican_kills.is_empty(),
        "michican must fire on at least one attack cell"
    );
    assert!(michican_kills.iter().all(|&kill| kill < ONE_FRAME_BITS));
    let detector_latencies: Vec<u64> = outcomes
        .iter()
        .filter(|o| o.attack_start_bits.is_some())
        .flat_map(|o| o.detectors.iter().filter_map(|d| d.detection_latency_bits))
        .collect();
    assert!(
        !detector_latencies.is_empty(),
        "at least one detector must fire on an attack cell"
    );
    assert!(detector_latencies.iter().all(|&l| l >= ONE_FRAME_BITS));

    // Clean cells are the false-positive floor: a trained grid must stay
    // quiet on the traffic it trained on.
    for outcome in outcomes.iter().filter(|o| o.scenario == "clean") {
        for d in &outcome.detectors {
            assert_eq!(
                d.false_alerts, 0,
                "{} false-alerted on clean traffic ({})",
                d.detector, outcome.defense
            );
        }
    }

    let table = render_ids_table(&outcomes);
    for variant in all_variants() {
        assert!(table.contains(&variant.label()));
    }
}

#[test]
fn detector_selection_accepts_registry_names_and_rejects_unknowns() {
    assert_eq!(
        detector_grid_for("all").unwrap().len(),
        all_variants().len()
    );
    for name in detector_names() {
        let grid = detector_grid_for(name).unwrap();
        assert!(!grid.is_empty());
        assert!(grid.iter().all(|v| v.detector == name));
    }
    assert!(detector_grid_for("not-a-detector").is_none());
    assert!(detector_grid_for("").is_none());
}

#[test]
fn ids_detects_late_and_never_eradicates() {
    let ids = flood_ids_defense(FLOOD_RUN);
    let latency = ids.detection_latency_bits.expect("the flood must alert");
    assert!(
        latency > 1_000,
        "IDS needs many complete frames: {latency} bits"
    );
    assert!(ids.frames_before_detection >= 5);
    assert!(!ids.eradicated, "an IDS cannot bus the attacker off");
    assert!(
        ids.total_attack_frames_delivered > 50,
        "the flood continues after detection"
    );
}

#[test]
fn michican_detects_within_the_first_frame_and_eradicates() {
    let michican = flood_michican_defense(FLOOD_RUN);
    let latency = michican
        .detection_latency_bits
        .expect("the counterattack must fire");
    assert!(
        latency < 25,
        "MichiCAN kills within the first frame's control field: {latency} bits"
    );
    assert_eq!(michican.frames_before_detection, 0);
    assert!(michican.eradicated);
    assert_eq!(
        michican.total_attack_frames_delivered, 0,
        "not one attack frame may complete"
    );
}

#[test]
fn michican_is_orders_of_magnitude_faster() {
    let ids = flood_ids_defense(FLOOD_RUN);
    let michican = flood_michican_defense(FLOOD_RUN);
    let ratio = ids.detection_latency_bits.unwrap() as f64
        / michican.detection_latency_bits.unwrap() as f64;
    assert!(ratio > 50.0, "latency ratio {ratio:.0}× must be dramatic");
}

#[test]
#[allow(deprecated)]
fn deprecated_ids_compare_shims_forward_to_idsbench() {
    use bench::ids_compare::{ids_defense, michican_defense};
    assert_eq!(ids_defense(FLOOD_RUN), flood_ids_defense(FLOOD_RUN));
    assert_eq!(
        michican_defense(FLOOD_RUN),
        flood_michican_defense(FLOOD_RUN)
    );
}

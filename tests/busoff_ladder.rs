//! End-to-end validation of the paper's core claim: a MichiCAN-equipped
//! ECU forces an attacking ECU into bus-off within 32 transmission
//! attempts, in ≈ 1248 bit times (§IV-E, §V-C).

use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId, ErrorState};
use can_sim::{bus_off_episodes, EventKind, Node, SimBuilder, Simulator};
use michican::prelude::*;
use michican::prevention;

fn frame(id: u16, data: &[u8]) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
}

/// Builds a simulator with one attacker and one MichiCAN defender ECU.
/// The defender's own identifier list is `[0x173]`; everything below it
/// that is not legitimate is a DoS attack.
fn attack_setup(attacker_frame: CanFrame) -> (Simulator, usize, usize) {
    let list = EcuList::from_raw(&[0x173]);
    let builder = SimBuilder::new(BusSpeed::K50);
    let attacker = builder.node_id();
    let builder = builder.node(Node::new(
        "attacker",
        Box::new(PeriodicSender::new(attacker_frame, 400, 0)),
    ));
    let defender = builder.node_id();
    let sim = builder
        .node(
            Node::new("defender", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
        )
        .build();
    (sim, attacker, defender)
}

#[test]
fn dos_attacker_is_bused_off_in_32_attempts() {
    let (mut sim, attacker, _) = attack_setup(frame(0x064, &[0; 8]));
    let hit = sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff));
    assert!(hit.is_some(), "attacker must reach bus-off");

    let episodes = bus_off_episodes(sim.events(), attacker);
    assert_eq!(episodes.len(), 1);
    let ep = &episodes[0];
    assert_eq!(
        ep.attempts, 32,
        "paper: 32 (re)transmissions to bus-off, got {}",
        ep.attempts
    );
    let bits = ep.duration().as_bits();
    // Theoretical clean worst case: 1248 bits. The simulator's emergent
    // timing (exact injection width, flag superposition) may differ by a
    // few bits per attempt; the paper's own measurement was 24.9 ± 0.45 ms
    // = 1245 ± 22 bits at 50 kbit/s.
    assert!(
        (1100..=1400).contains(&bits),
        "bus-off time {bits} bits outside the expected envelope"
    );
}

#[test]
fn spoofing_attacker_is_bused_off() {
    // The attacker spoofs the defender's own identifier 0x173.
    let (mut sim, attacker, _) = attack_setup(frame(0x173, &[0xFF; 8]));
    let hit = sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff));
    assert!(hit.is_some(), "spoofing attacker must reach bus-off");
    let episodes = bus_off_episodes(sim.events(), attacker);
    assert_eq!(episodes[0].attempts, 32);
}

#[test]
fn attacker_walks_the_error_state_ladder() {
    let (mut sim, attacker, _) = attack_setup(frame(0x050, &[0x11; 8]));
    sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff));

    // Collect the attacker's error-state transitions in order.
    let states: Vec<ErrorState> = sim
        .events()
        .iter()
        .filter(|e| e.node == attacker)
        .filter_map(|e| match e.kind {
            EventKind::ErrorStateChanged { state } => Some(state),
            _ => None,
        })
        .collect();
    assert_eq!(
        states,
        vec![ErrorState::ErrorPassive, ErrorState::BusOff],
        "Fig. 1b: active → passive → bus-off"
    );
}

#[test]
fn defender_counters_are_untouched() {
    // "the legitimate node's TEC remains unaffected by the counterattack"
    let (mut sim, _, defender) = attack_setup(frame(0x064, &[0; 8]));
    sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff));
    assert_eq!(
        sim.node(defender).controller().counters().tec(),
        0,
        "GPIO injection must not raise the defender's TEC"
    );
    assert_ne!(
        sim.node(defender).controller().error_state(),
        ErrorState::BusOff
    );
}

#[test]
fn no_complete_attack_frame_ever_reaches_an_application() {
    let (mut sim, _, _) = attack_setup(frame(0x001, &[0xAA; 8]));
    sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff));
    assert!(
        !sim.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::FrameReceived { .. })),
        "every attack frame must be destroyed before completion"
    );
    assert!(!sim
        .events()
        .iter()
        .any(|e| matches!(e.kind, EventKind::TransmissionSucceeded { .. })),);
}

#[test]
fn attacker_recovers_and_is_bused_off_again() {
    // Persistent attacker: after 128 × 11 recessive bits it recovers and
    // the defense repeats (paper §V-E: short periodic bus-load spikes).
    let (mut sim, attacker, _) = attack_setup(frame(0x064, &[0; 8]));
    sim.run(40_000); // 0.8 s at 50 kbit/s
    let episodes = bus_off_episodes(sim.events(), attacker);
    assert!(
        episodes.len() >= 2,
        "expected repeated bus-off episodes, got {}",
        episodes.len()
    );
    for ep in &episodes {
        assert_eq!(ep.attempts, 32);
    }
    let recoveries = sim
        .events()
        .iter()
        .filter(|e| e.node == attacker && matches!(e.kind, EventKind::Recovered))
        .count();
    assert!(recoveries >= 1);
}

#[test]
fn michican_stats_reflect_the_episode() {
    let (mut sim, _, defender) = attack_setup(frame(0x064, &[0; 8]));
    sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff));
    // Downcast-free access: the agent trait has no stats, so go through
    // the concrete node API is not possible here; instead verify via event
    // counts that 32 error flags were provoked.
    let attacker_errors = sim
        .events()
        .iter()
        .filter(|e| {
            e.node == 0
                && matches!(
                    e.kind,
                    EventKind::ErrorDetected {
                        role: can_sim::ErrorRole::Transmitter,
                        ..
                    }
                )
        })
        .count();
    assert_eq!(attacker_errors, 32);
    let _ = defender;
}

#[test]
fn theory_and_simulation_agree_on_scale() {
    let theory = prevention::single_attacker_total(prevention::WORST_CASE_FLAG_START);
    let (mut sim, attacker, _) = attack_setup(frame(0x064, &[0; 8]));
    sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff));
    let measured = bus_off_episodes(sim.events(), attacker)[0]
        .duration()
        .as_bits();
    let ratio = measured as f64 / theory as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "simulated/theoretical = {ratio:.3} (measured {measured}, theory {theory})"
    );
}

//! Property-level equivalence: for *arbitrary* node sets, fault stacks
//! and attack shapes, lockstep, idle fast-forward and packed-kernel runs
//! are byte-identical — plus regression pins proving that skip-ahead
//! never jumps over a fault-window boundary or a suspend expiry, and that
//! packed stretches break exactly at mid-word fault onsets and agent
//! intervention points.

use bench::differential::check_equivalence;
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId};
use can_obs::Recorder;
use can_sim::{ControllerConfig, EventKind, FaultModel, FaultStack, Node, SimBuilder, TxFault};
use michican::prelude::*;
use proptest::prelude::*;

fn frame(id: u16, data: &[u8]) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
}

/// Distinct (id, period, payload) sender configurations with enough slack
/// for real idle gaps (the fast-forward path must have something to skip).
fn arb_senders() -> impl Strategy<Value = Vec<(u16, u64, Vec<u8>)>> {
    proptest::collection::btree_map(
        0x080u16..=CanId::MAX_RAW,
        (900u64..6_000, proptest::collection::vec(any::<u8>(), 0..=8)),
        1..5,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(id, (period, payload))| (id, period, payload))
            .collect()
    })
}

/// 0–2 random channel-fault layers.
fn arb_faults() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..4, any::<u64>()), 0..3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized benign/attacked buses under randomized fault stacks:
    /// lockstep, fast-forward and the packed kernel agree on every
    /// observable surface.
    #[test]
    fn random_buses_are_bit_identical_under_acceleration(
        senders in arb_senders(),
        faults in arb_faults(),
        attack in any::<bool>(),
    ) {
        let build = |recorder: Recorder| {
            let mut builder = SimBuilder::new(BusSpeed::K500).recorder(recorder);
            for (i, (id, period, payload)) in senders.iter().enumerate() {
                builder = builder.node(Node::new(
                    format!("ecu{i}"),
                    Box::new(PeriodicSender::new(
                        frame(*id, payload),
                        *period,
                        (i as u64) * 53,
                    )),
                ));
            }
            if attack {
                let list = EcuList::from_raw(&[0x173]);
                builder = builder
                    .node(Node::new(
                        "attacker",
                        Box::new(PeriodicSender::new(frame(0x064, &[0; 8]), 2_000, 0)),
                    ))
                    .node(
                        Node::new("defender", Box::new(SilentApplication)).with_agent(
                            Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0))),
                        ),
                    );
            } else {
                builder = builder.node(Node::new("rx", Box::new(SilentApplication)));
            }
            let mut stack = FaultStack::new();
            for &(kind, seed) in &faults {
                // Derive the layer shape from the random tuple: mixed
                // BERs and a scripted flip, all seed-dependent.
                stack.push(match kind {
                    0 => FaultModel::random(1e-5, seed),
                    1 => FaultModel::random(1e-4, seed),
                    2 => FaultModel::scripted(vec![seed % 18_000]),
                    _ => FaultModel::random(5e-4, seed),
                });
            }
            builder.faults(stack).build()
        };
        check_equivalence(build, 18_000).unwrap();
    }
}

#[test]
fn skip_ahead_never_jumps_a_tx_fault_window_boundary() {
    // A stuck-dominant pin window opens at bit 2 000, deep inside an idle
    // stretch (the only sender is quiet from ~150 to 4 000). A skip that
    // overshoots the boundary would swallow the resulting error burst.
    let build = |recorder: Recorder| {
        SimBuilder::new(BusSpeed::K500)
            .recorder(recorder)
            .node(Node::new(
                "tx",
                Box::new(PeriodicSender::new(frame(0x100, &[0x11; 4]), 4_000, 0)),
            ))
            .node(Node::new("rx", Box::new(SilentApplication)))
            .node(
                Node::new("flaky", Box::new(SilentApplication))
                    .with_tx_fault(TxFault::stuck_dominant(2_000, 2_100)),
            )
            .build()
    };
    check_equivalence(build, 8_000).unwrap();

    // The boundary really sits in skipped territory: the window produces
    // protocol errors shortly after bit 2 000 (a jumped boundary would
    // leave this region silent and the assertion above vacuous).
    let mut sim = build(Recorder::disabled());
    sim.run_fast(8_000);
    assert!(
        sim.events().iter().any(|e| {
            matches!(e.kind, EventKind::ErrorDetected { .. })
                && (2_000..2_300).contains(&e.at.bits())
        }),
        "the stuck-dominant window must be observed at its opening bit"
    );
}

#[test]
fn skip_ahead_never_jumps_a_scripted_channel_flip() {
    // A single scripted channel flip at bit 2 500 lands in an otherwise
    // idle stretch: the spurious dominant bit reads as a SOF and ends in a
    // stuff error a few bits later. Fast-forward must stop exactly at the
    // scripted bit to reproduce it.
    let build = |recorder: Recorder| {
        SimBuilder::new(BusSpeed::K500)
            .recorder(recorder)
            .node(Node::new(
                "tx",
                Box::new(PeriodicSender::new(frame(0x100, &[0x22; 4]), 6_000, 0)),
            ))
            .node(Node::new("rx", Box::new(SilentApplication)))
            .fault(FaultModel::scripted(vec![2_500]))
            .build()
    };
    check_equivalence(build, 6_000).unwrap();

    let mut sim = build(Recorder::disabled());
    sim.run_fast(6_000);
    assert!(
        sim.events().iter().any(|e| {
            matches!(e.kind, EventKind::ErrorDetected { .. })
                && (2_500..2_600).contains(&e.at.bits())
        }),
        "the scripted flip must surface as an error right after bit 2500"
    );
}

#[test]
fn skip_ahead_never_jumps_a_suspend_expiry() {
    // A lone single-shot transmitter with nobody to acknowledge walks into
    // error-passive and from then on serves an 8-bit suspend-transmission
    // penalty after every attempt, followed by a long idle gap until its
    // next period. The skip horizon must include the suspend expiry (and
    // the queued next attempt), or retransmission timing drifts.
    let build = |recorder: Recorder| {
        SimBuilder::new(BusSpeed::K500)
            .recorder(recorder)
            .node(Node::with_config(
                "lone",
                Box::new(PeriodicSender::new(frame(0x0A0, &[0x33; 2]), 1_000, 0)),
                ControllerConfig {
                    ack_enabled: true,
                    retransmit: false,
                },
            ))
            .build()
    };
    check_equivalence(build, 40_000).unwrap();

    let mut sim = build(Recorder::disabled());
    sim.run_fast(40_000);
    let ack_errors = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ErrorDetected { .. }))
        .count();
    assert!(
        ack_errors >= 30,
        "every period must produce exactly one attempt + ACK error: {ack_errors}"
    );
    assert!(
        sim.node(0).controller().counters().tec() >= 96,
        "the transmitter must have reached the error-passive regime"
    );
}

#[test]
fn packed_stretches_break_at_mid_word_channel_flips() {
    // Scripted channel flips timed to land *inside* frame bodies — deep in
    // territory the packed kernel would otherwise resolve as one 64-bit
    // word. The fault-stack horizon must cap every stretch at the scripted
    // bit so the flip (and the error frame it provokes) replays exactly.
    let build = |recorder: Recorder| {
        SimBuilder::new(BusSpeed::K500)
            .recorder(recorder)
            .node(Node::new(
                "tx",
                Box::new(PeriodicSender::new(frame(0x0C4, &[0x5A; 8]), 500, 0)),
            ))
            .node(Node::new("rx", Box::new(SilentApplication)))
            // Bit 30 lands mid-arbitration of the first frame, 1 060 and
            // 2_585 inside later frame bodies at unaligned word offsets.
            .fault(FaultModel::scripted(vec![30, 1_060, 2_585]))
            .build()
    };
    check_equivalence(build, 6_000).unwrap();

    let mut sim = build(Recorder::disabled());
    sim.run_packed(6_000);
    assert!(
        sim.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::ErrorDetected { .. })),
        "the mid-frame flips must provoke observable protocol errors"
    );
}

#[test]
fn packed_stretches_break_at_agent_intervention_boundaries() {
    // A spoofing attacker and a MichiCan defender: the defender's
    // injection start is an agent drive that must cap the packed stretch
    // at exactly the right bit — one bit late and the error frame shifts,
    // diverging every downstream surface.
    let build = |recorder: Recorder| {
        let list = EcuList::from_raw(&[0x173]);
        SimBuilder::new(BusSpeed::K500)
            .recorder(recorder)
            .node(Node::new(
                "victim",
                Box::new(PeriodicSender::new(frame(0x173, &[0x11; 8]), 3_000, 0)),
            ))
            .node(Node::new(
                "attacker",
                Box::new(PeriodicSender::new(frame(0x173, &[0xFF; 8]), 3_000, 1_500)),
            ))
            .node(
                Node::new("defender", Box::new(SilentApplication))
                    .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
            )
            .build()
    };
    check_equivalence(build, 20_000).unwrap();

    let mut sim = build(Recorder::disabled());
    sim.run_packed(20_000);
    assert!(
        sim.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::ErrorDetected { .. })),
        "the defender's injections must destroy the spoofed frames"
    );
}

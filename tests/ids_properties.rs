//! Property coverage for the timing-IDS detector family: for *arbitrary*
//! periods, training depths, thresholds and benign-noise interleavings,
//!
//! * CUSUM and entropy complete the train → arm → detect lifecycle —
//!   quiet on the traffic they trained on, alerting within a bounded
//!   number of frames once the distribution shifts; and
//! * attaching the full registry detector grid as passive taps never
//!   perturbs the simulation: lockstep, idle fast-forward and the packed
//!   bus kernel stay byte-identical with every tap installed.

use bench::differential::check_equivalence;
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BitInstant, BusSpeed, CanFrame, CanId};
use can_ids::registry::all_variants;
use can_ids::{CusumIds, Detector, DetectorTap, EntropyIds, IdsPhase, ZScoreIds};
use can_sim::{Node, SimBuilder};
use proptest::prelude::*;

fn frame(id: u16) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), &[0]).unwrap()
}

const VICTIM: u16 = 0x100;
const NOISE: u16 = 0x2A0;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CUSUM lifecycle under random interleavings: trained on a clean
    /// period with benign noise frames woven in at random offsets, it
    /// stays quiet on continued clean traffic and alerts on the victim
    /// identifier within three frames of a 5× flood.
    #[test]
    fn cusum_trains_arms_and_detects_under_random_interleavings(
        period in 300u64..1_200,
        training in 3usize..8,
        h_sigma in 2u32..9,
        noise_phase in 0u64..500,
    ) {
        let mut ids = CusumIds::new(training, f64::from(h_sigma));
        let noise_period = period * 2 + 61;

        // Train: victim at `period`, noise interleaved at its own period.
        let train_frames = (training + 2) as u64;
        for k in 0..train_frames {
            Detector::observe(&mut ids, &frame(VICTIM), BitInstant::from_bits(k * period));
            Detector::observe(
                &mut ids,
                &frame(NOISE),
                BitInstant::from_bits(noise_phase + k * noise_period),
            );
        }
        ids.arm();
        prop_assert_eq!(ids.phase(), IdsPhase::Armed);

        // Continued clean victim traffic must stay quiet.
        let mut t = (train_frames - 1) * period;
        for _ in 0..10 {
            t += period;
            let alert = Detector::observe(&mut ids, &frame(VICTIM), BitInstant::from_bits(t));
            prop_assert!(
                alert.is_none(),
                "clean post-arm victim traffic alerted at {t}"
            );
        }

        // A 5× flood of the victim id alerts within three frames.
        let flood_interval = (period / 5).max(1);
        let mut victim_alert = None;
        for k in 0..6u64 {
            t += flood_interval;
            if let Some(alert) = Detector::observe(&mut ids, &frame(VICTIM), BitInstant::from_bits(t)) {
                prop_assert_eq!(alert.id, CanId::from_raw(VICTIM));
                victim_alert = Some(k);
                break;
            }
        }
        let first = victim_alert.expect("a 5x flood must alert");
        prop_assert!(first <= 2, "alert within 3 flood frames, got frame {first}");
    }

    /// Entropy lifecycle: trained on an alternating two-identifier stream
    /// (entropy 1 bit), a single-identifier flood collapses the window
    /// entropy to 0 and must alert within two windows.
    #[test]
    fn entropy_trains_arms_and_detects_distribution_collapse(
        window in 6usize..20,
        band_millibits in 300u32..700,
        period in 100u64..500,
    ) {
        let mut ids = EntropyIds::new(window, band_millibits);
        let mut t = 0u64;
        // Train on strict alternation until auto-armed.
        let mut k = 0u64;
        while ids.phase() == IdsPhase::Training {
            let id = if k.is_multiple_of(2) { VICTIM } else { NOISE };
            Detector::observe(&mut ids, &frame(id), BitInstant::from_bits(t));
            t += period;
            k += 1;
            prop_assert!(k < 10_000, "training must converge");
        }

        // Continued alternation stays quiet.
        for k in 0..(window as u64 * 2) {
            let id = if k.is_multiple_of(2) { VICTIM } else { NOISE };
            let alert = Detector::observe(&mut ids, &frame(id), BitInstant::from_bits(t));
            prop_assert!(alert.is_none(), "balanced traffic alerted");
            t += period;
        }

        // Flood one identifier: entropy collapses 1 bit -> 0 bits, which
        // exceeds any band below 1000 millibits within two windows.
        let mut alerted = false;
        for _ in 0..(window * 2) {
            if Detector::observe(&mut ids, &frame(VICTIM), BitInstant::from_bits(t)).is_some() {
                alerted = true;
                break;
            }
            t += period / 2;
        }
        prop_assert!(alerted, "distribution collapse must alert");
    }

    /// Bounded jitter is business as usual: a z-score detector trained on
    /// a noisy-but-bounded period never alerts while the jitter stays
    /// well inside its band.
    #[test]
    fn zscore_tolerates_bounded_jitter(
        period in 400u64..1_000,
        jitter_seed in any::<u64>(),
    ) {
        let mut ids = ZScoreIds::new(6, 6.0);
        // σ floor is 5% of the mean; keep jitter within ±2σ of it.
        let jitter_cap = period / 10;
        let mut state = jitter_seed | 1;
        let mut next_jitter = move || {
            // SplitMix64 step — deterministic per seed.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % (jitter_cap.max(1))
        };
        let mut t = 0u64;
        for _ in 0..40 {
            t += period + next_jitter();
            let alert = Detector::observe(&mut ids, &frame(VICTIM), BitInstant::from_bits(t));
            prop_assert!(alert.is_none(), "bounded jitter alerted at {t}");
        }
    }

    /// Passive taps never perturb the kernel: with the full registry grid
    /// attached, all three execution modes agree on every observable
    /// surface, for arbitrary payloads and phase offsets.
    #[test]
    fn taps_preserve_mode_equivalence(
        payload in proptest::collection::vec(any::<u8>(), 0..=8),
        offset in 0u64..400,
    ) {
        check_equivalence(
            |recorder| {
                let victim_frame = CanFrame::data_frame(CanId::from_raw(0x173), &payload).unwrap();
                let mut builder = SimBuilder::new(BusSpeed::K500)
                    .recorder(recorder)
                    .node(Node::new(
                        "victim",
                        Box::new(PeriodicSender::new(victim_frame, 600, offset)),
                    ))
                    .node(Node::new("rx", Box::new(SilentApplication)));
                for variant in all_variants() {
                    let tap = DetectorTap::new(variant.label(), variant.instantiate());
                    builder = builder.tap(tap.as_frame_tap());
                }
                builder.build()
            },
            15_000,
        )
        .unwrap();
    }
}

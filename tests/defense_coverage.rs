//! Defense coverage across the threat model (§III) and deployment
//! scenarios (§IV-A): fabrication, masquerade, miscellaneous identifiers,
//! the light scenario's division of labor, and detection-only (IDS) mode.

use can_attacks::{FabricationAttacker, MasqueradeAttacker};
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId};
use can_sim::{bus_off_episodes, EventKind, Node, SimBuilder};
use michican::handler::{MichiCan, MichiCanConfig};
use michican::prelude::*;

fn frame(id: u16, data: &[u8]) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
}

fn defender(list: &EcuList, index: usize) -> Node {
    Node::new("defender", Box::new(SilentApplication))
        .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(list, index))))
}

#[test]
fn fabrication_attacker_is_eradicated_before_overriding_the_victim() {
    // The attacker spoofs 0x1A0 (a legitimate identifier owned by the
    // defender) at 4× the victim's rate. With MichiCAN, not a single
    // fabricated frame completes.
    let list = EcuList::from_raw(&[0x1A0, 0x300]);
    let builder = SimBuilder::new(BusSpeed::K500);
    let attacker = builder.node_id();
    let builder = builder
        .node(Node::new(
            "fabricator",
            Box::new(FabricationAttacker::new(
                CanId::from_raw(0x1A0),
                &[0xBA, 0xD0, 0xBA, 0xD0],
                2_000,
                4,
            )),
        ))
        .node(defender(&list, 0));
    let observer = builder.node_id();
    let mut sim = builder
        .node(Node::new("observer", Box::new(SilentApplication)))
        .build();

    sim.run(12_000);

    let episodes = bus_off_episodes(sim.events(), attacker);
    assert!(!episodes.is_empty(), "fabricator must be bused off");
    let fabricated_received = sim
        .events()
        .iter()
        .filter(|e| {
            e.node == observer
                && matches!(&e.kind, EventKind::FrameReceived { frame }
                    if frame.data() == [0xBA, 0xD0, 0xBA, 0xD0])
        })
        .count();
    assert_eq!(fabricated_received, 0, "no fabricated frame may complete");
}

#[test]
fn masquerade_takeover_is_blocked() {
    // A masquerade attacker waits for the victim (0x260) to fall silent,
    // then impersonates it. The victim here is simply absent (e.g. failed);
    // the defender still detects the spoofed 0x260 and kills it — the
    // masquerade's fabrication phase cannot complete a single frame.
    let list = EcuList::from_raw(&[0x260, 0x3E6]);
    let builder = SimBuilder::new(BusSpeed::K500);
    let attacker = builder.node_id();
    // The 0x260 owner runs MichiCAN (spoofing detection on its own id).
    let builder = builder
        .node(Node::new(
            "masquerader",
            Box::new(MasqueradeAttacker::new(
                CanId::from_raw(0x260),
                &[0xEE; 8],
                1_000,
                500,
            )),
        ))
        .node(defender(&list, 0));
    let observer = builder.node_id();
    let mut sim = builder
        .node(Node::new("observer", Box::new(SilentApplication)))
        .build();
    sim.run(15_000);

    assert!(
        !bus_off_episodes(sim.events(), attacker).is_empty(),
        "the masquerader's controller must be forced off the bus"
    );
    let impersonated = sim
        .events()
        .iter()
        .filter(|e| {
            e.node == observer
                && matches!(&e.kind, EventKind::FrameReceived { frame }
                    if frame.id() == CanId::from_raw(0x260))
        })
        .count();
    assert_eq!(impersonated, 0, "no impersonated frame may be delivered");
}

#[test]
fn miscellaneous_identifiers_are_left_alone_end_to_end() {
    // Definition IV.3: identifiers above every legitimate one lose
    // arbitration to real traffic and are harmless; MichiCAN must not
    // attack them.
    let list = EcuList::from_raw(&[0x100, 0x173]);
    let builder = SimBuilder::new(BusSpeed::K500);
    let misc = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "misc-sender",
            Box::new(PeriodicSender::new(frame(0x500, &[1, 2, 3]), 1_000, 0)),
        ))
        .node(defender(&list, 1))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    sim.run(10_000);

    assert!(
        bus_off_episodes(sim.events(), misc).is_empty(),
        "miscellaneous traffic must never be counterattacked"
    );
    assert!(
        sim.events()
            .iter()
            .any(|e| matches!(&e.kind, EventKind::FrameReceived { frame }
                if frame.id() == CanId::from_raw(0x500))),
        "miscellaneous frames flow normally"
    );
    assert_eq!(sim.node(misc).controller().counters().tec(), 0);
}

#[test]
fn light_scenario_lower_half_only_defends_itself() {
    // In the light scenario the lower half of 𝔼 runs spoofing-only
    // detection. A DoS identifier below a lower-half member must NOT be
    // attacked by that member — but the upper half still catches it.
    let list = EcuList::from_raw(&[0x100, 0x200, 0x300, 0x400]);
    let lower_fsm = DetectionFsm::for_scenario(&list, 0, Scenario::Light); // 0x100, 𝔼₁
    let upper_fsm = DetectionFsm::for_scenario(&list, 3, Scenario::Light); // 0x400, 𝔼₂

    // DoS identifier 0x050 outranks everything.
    let dos = CanId::from_raw(0x050);
    assert!(
        !lower_fsm.classify(dos),
        "lower-half members ignore DoS identifiers in the light scenario"
    );
    assert!(upper_fsm.classify(dos), "the upper half still catches DoS");

    // Spoofing the lower-half member is still caught by that member.
    assert!(lower_fsm.classify(CanId::from_raw(0x100)));

    // End to end: a bus where only the light-scenario upper half defends
    // still eradicates the attacker.
    let builder = SimBuilder::new(BusSpeed::K500);
    let attacker = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "attacker",
            Box::new(PeriodicSender::new(frame(0x050, &[0; 8]), 300, 0)),
        ))
        .node(
            Node::new("light-lower", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(lower_fsm))),
        )
        .node(
            Node::new("light-upper", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(upper_fsm))),
        )
        .build();
    sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff))
        .expect("the light scenario still protects against DoS");
    assert_eq!(bus_off_episodes(sim.events(), attacker)[0].attempts, 32);
}

#[test]
fn multiple_defenders_detect_simultaneously_without_interfering() {
    // §IV-A: "each ECU_i will detect a malicious transmission
    // simultaneously — beneficial in case legitimate ECUs fail." Two
    // full-scenario defenders inject in the same window; the superposed
    // dominant levels are indistinguishable from one injection.
    let list = EcuList::from_raw(&[0x173, 0x200]);
    let builder = SimBuilder::new(BusSpeed::K500);
    let attacker = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "attacker",
            Box::new(PeriodicSender::new(frame(0x064, &[0; 8]), 300, 0)),
        ))
        .node(defender(&list, 0))
        .node(defender(&list, 1))
        .build();
    sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff))
        .expect("attacker bused off");
    let ep = &bus_off_episodes(sim.events(), attacker)[0];
    assert_eq!(ep.attempts, 32, "double injection does not slow the ladder");
    // Redundancy: drop one defender, the other still suffices (already
    // covered by other tests); here we check neither defender was harmed.
    for node in [1usize, 2] {
        assert_eq!(sim.node(node).controller().counters().tec(), 0);
    }
}

#[test]
fn detection_only_mode_observes_but_does_not_prevent() {
    // MichiCAN as a pure IDS (prevention disabled): the attack is detected
    // but traffic keeps flowing — Table I's "detection without
    // eradication" row, reproduced.
    let list = EcuList::from_raw(&[0x173]);
    let ids_config = MichiCanConfig {
        prevention_enabled: false,
        ..MichiCanConfig::default()
    };
    let builder = SimBuilder::new(BusSpeed::K500);
    let attacker = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "attacker",
            Box::new(PeriodicSender::new(frame(0x064, &[0; 8]), 300, 0)),
        ))
        .node(
            Node::new("ids", Box::new(SilentApplication)).with_agent(Box::new(
                MichiCan::with_config(DetectionFsm::for_ecu(&list, 0), ids_config),
            )),
        )
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    sim.run(10_000);

    assert!(
        bus_off_episodes(sim.events(), attacker).is_empty(),
        "IDS mode must not eradicate"
    );
    let delivered = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FrameReceived { .. }))
        .count();
    assert!(delivered > 20, "the DoS flows unhindered: {delivered}");
}

//! Differential tests for the observability plane's determinism contract
//! (`can-obs` + `bench::runner::ExperimentPlan::run_metered`): the merged
//! metrics registry of a sharded run must be *byte-identical* to the
//! serial (shards=1) reference — per-cell registries are fresh, cells are
//! seeded by index, and registries merge in cell index order. Also locks
//! the zero-cost contract: a disabled recorder records nothing and leaves
//! every measured artifact untouched.

use bench::campaign::{run_campaign, run_campaign_with, CampaignConfig};
use bench::detection::{run_sweep_with_sizes_sharded, run_sweep_with_sizes_with};
use bench::obs::run_reaction_probe;
use bench::runner::ExecOpts;
use can_obs::Recorder;

fn metered(recorder: &Recorder) -> ExecOpts {
    ExecOpts::new().with_recorder(recorder.clone())
}

const SHARD_COUNTS: [usize; 2] = [2, 4];

fn quick_config(shards: usize) -> CampaignConfig {
    CampaignConfig {
        seed: 0x00D5_2025,
        run_ms: 30.0,
        shards,
    }
}

#[test]
fn metered_campaign_snapshot_is_byte_identical_across_shard_counts() {
    let serial = Recorder::enabled();
    let serial_report = run_campaign_with(&quick_config(1), &metered(&serial)).render();
    let serial_json = serial.snapshot_json();
    assert!(
        serial_json.contains("michican_reaction_latency_bits"),
        "campaign snapshot carries the defender's latency histogram"
    );
    for shards in SHARD_COUNTS {
        let parallel = Recorder::enabled();
        let parallel_report =
            run_campaign_with(&quick_config(shards), &metered(&parallel)).render();
        assert_eq!(parallel_report, serial_report, "report, shards={shards}");
        assert_eq!(
            parallel.snapshot_json(),
            serial_json,
            "merged metrics snapshot diverged: shards={shards}"
        );
    }
}

#[test]
fn metered_sweep_snapshot_is_byte_identical_across_shard_counts() {
    let serial = Recorder::enabled();
    let serial_sweep = run_sweep_with_sizes_with(120, 42, 50, 150, &metered(&serial));
    let serial_json = serial.snapshot_json();
    for shards in SHARD_COUNTS {
        let parallel = Recorder::enabled();
        let parallel_sweep =
            run_sweep_with_sizes_with(120, 42, 50, 150, &metered(&parallel).with_shards(shards));
        assert_eq!(parallel_sweep, serial_sweep, "shards={shards}");
        assert_eq!(
            parallel.snapshot_json(),
            serial_json,
            "merged sweep snapshot diverged: shards={shards}"
        );
    }
}

#[test]
fn full_metrics_export_path_is_deterministic() {
    // The exact --metrics-out composition for `experiments detection`: the
    // metered sweep (sharded) followed by the serial reaction probe, all
    // merged into one root recorder.
    let snapshot = |shards: usize| {
        let recorder = Recorder::enabled();
        run_sweep_with_sizes_with(60, 7, 50, 150, &metered(&recorder).with_shards(shards));
        run_reaction_probe(&recorder, 30.0);
        recorder.snapshot_json()
    };
    let serial = snapshot(1);
    for shards in SHARD_COUNTS {
        assert_eq!(snapshot(shards), serial, "shards={shards}");
    }
}

#[test]
fn disabled_recorder_records_nothing_and_perturbs_nothing() {
    // Nothing recorded…
    let disabled = Recorder::disabled();
    let report = run_campaign_with(&quick_config(1), &metered(&disabled));
    assert!(disabled.into_registry().is_empty());

    // …and the measured artifact is identical to the unmetered run, and to
    // a run metered with an enabled recorder.
    let baseline = run_campaign(&quick_config(1));
    assert_eq!(report, baseline, "disabled metering must not perturb cells");
    let enabled = Recorder::enabled();
    let enabled_report = run_campaign_with(&quick_config(1), &metered(&enabled));
    assert_eq!(
        enabled_report, baseline,
        "enabled metering must not perturb cells"
    );

    let sweep_metered = run_sweep_with_sizes_with(60, 7, 50, 150, &metered(&Recorder::disabled()));
    let sweep_plain = run_sweep_with_sizes_sharded(60, 7, 50, 150, 1);
    assert_eq!(sweep_metered, sweep_plain);
}

#[test]
fn snapshot_carries_the_acceptance_series() {
    let recorder = Recorder::enabled();
    run_reaction_probe(&recorder, 40.0);
    let json = recorder.snapshot_json();
    for series in [
        "can_node_tec{",
        "can_node_rec{",
        "can_errors_total{",
        "michican_fsm_steps_total{",
        "michican_detections_total{",
        "michican_reaction_latency_bits{",
        "parrot_reaction_latency_bits{",
        "\"p50\"",
        "\"p95\"",
        "\"p99\"",
    ] {
        assert!(json.contains(series), "snapshot is missing {series}");
    }
}

//! Shape assertions for the paper's evaluation (fast versions of the
//! `experiments` binary's runs): who wins, by what factor, and where the
//! crossovers fall — the reproduction contract of EXPERIMENTS.md.

use bench::scenarios::{
    run_experiment, run_multi_attacker, run_parksense, table2_experiments, TABLE2_SPEED,
};
use bench::{busload, detection};

#[test]
fn table2_clean_experiments_match_theory_envelope() {
    // Experiments 2 and 4 (single attacker, no restbus): every episode
    // lands in the theoretical [best, worst]+margin envelope and shows
    // essentially no variance.
    for number in [2u8, 4] {
        let exp = table2_experiments()
            .into_iter()
            .find(|e| e.number == number)
            .unwrap();
        let outcome = run_experiment(&exp, 500.0);
        let (_, stats) = &outcome.per_attacker[0];
        let stats = stats.expect("episodes must complete");
        let mean = stats.mean_millis(TABLE2_SPEED);
        assert!(
            (21.0..=27.5).contains(&mean),
            "exp {number}: mean {mean:.1} ms outside the paper band (24.2-24.9 ± model delta)"
        );
        assert!(
            stats.std_millis(TABLE2_SPEED) < 1.0,
            "exp {number}: clean runs are near-deterministic"
        );
    }
}

#[test]
fn table2_restbus_increases_variance_not_floor() {
    // Experiment 3 vs 4: restbus traffic raises variance and max, while
    // the minimum stays at the clean episode length.
    let exps = table2_experiments();
    let with = run_experiment(&exps[2], 1_000.0); // exp 3
    let without = run_experiment(&exps[3], 1_000.0); // exp 4
    let s_with = with.per_attacker[0].1.expect("episodes");
    let s_without = without.per_attacker[0].1.expect("episodes");
    assert!(
        s_with.std_bits > s_without.std_bits,
        "restbus must add variance"
    );
    assert!(
        s_with.max_bits > s_without.max_bits,
        "interrupted episodes run longer"
    );
    assert!(
        s_with.min_bits <= s_without.min_bits + 50,
        "uninterrupted episodes stay at the clean length"
    );
}

#[test]
fn experiment5_grows_by_half_not_double() {
    // Paper: "the mean bus-off time grows by around 50 % due to the
    // retransmissions getting intertwined … the bus-off time does not
    // double."
    let exps = table2_experiments();
    let two = run_experiment(&exps[4], 1_500.0); // exp 5
    let single = run_experiment(&exps[3], 1_500.0); // exp 4 baseline
    let base = single.per_attacker[0].1.unwrap().mean_bits;
    let first = two.per_attacker[0].1.expect("0x066 episodes").mean_bits;
    let second = two.per_attacker[1].1.expect("0x067 episodes").mean_bits;
    let ratio = first / base;
    assert!(
        (1.25..=1.85).contains(&ratio),
        "growth ratio {ratio:.2} should be ≈ 1.5"
    );
    assert!(
        second < first,
        "paper: the second attacker's bus-off time is slightly smaller"
    );
}

#[test]
fn multi_attacker_crossover_at_five() {
    // Paper: A = 4 still fits the 5000-bit deadline budget; A = 5 renders
    // the bus inoperable.
    let four = run_multi_attacker(4, 60_000).expect("A=4 eradicated");
    let five = run_multi_attacker(5, 60_000).expect("A=5 eradicated");
    assert!(four <= 5_000, "A=4 total {four} bits must fit the deadline");
    assert!(
        five > 5_000,
        "A=5 total {five} bits must exceed the deadline"
    );
    // Sub-linear growth: 4 attackers take far less than 4× one attacker.
    let one = run_multi_attacker(1, 60_000).unwrap();
    assert!(four < one * 4, "intertwining keeps growth sub-linear");
}

#[test]
fn detection_sweep_shape() {
    let sweep = detection::run_sweep(100, 2026);
    assert_eq!(sweep.detection_rate, 1.0);
    assert_eq!(sweep.false_positive_rate, 0.0);
    assert!((8.0..10.0).contains(&sweep.mean_detection_position));

    // Monotone growth with IVN size (the paper's stated trend).
    let small = detection::run_sweep_with_sizes(60, 1, 10, 10);
    let large = detection::run_sweep_with_sizes(60, 1, 300, 300);
    assert!(small.mean_detection_position < large.mean_detection_position);
}

#[test]
fn michican_beats_parrot_on_load_and_self_damage() {
    let michican = busload::michican_load(300.0);
    let parrot = busload::parrot_load(500.0);
    assert!(michican.attacker_bused_off);
    assert_eq!(michican.defender_tec, 0);
    assert!(parrot.defender_tec > 0, "parrot wounds itself");
    assert!(
        parrot.overall > michican.overall * 1.5,
        "paper: MichiCAN's bus load is at least 2× lower during bus-off \
         attempts (parrot {:.2} vs michican {:.2} overall)",
        parrot.overall,
        michican.overall
    );
}

#[test]
fn parksense_outcome_flips_with_the_dongle() {
    let undefended = run_parksense(false, 400.0);
    let defended = run_parksense(true, 400.0);
    assert!(
        undefended.became_unavailable,
        "attack works when undefended"
    );
    assert!(!defended.became_unavailable, "MichiCAN restores ParkSense");
    assert!(defended.attacker_bus_offs >= 1);
    assert!(defended.status_frames_received > undefended.status_frames_received);
}

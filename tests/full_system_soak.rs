//! Everything-together soak: restbus traffic, a remote-frame
//! request/response pair, an IDS monitor, a MichiCAN defender, channel
//! noise AND a persistent DoS attacker on one bus — global invariants
//! must hold simultaneously.

use can_attacks::{DosKind, SuspensionAttacker};
use can_core::app::{PeriodicSender, RemoteResponder, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId, ErrorState};
use can_ids::IdsMonitor;
use can_sim::{bus_off_episodes, EventKind, FaultModel, Node, SimBuilder};
use michican::prelude::*;
use restbus::{pacifica_matrix, ReplayApp};

#[test]
fn the_whole_stack_coexists() {
    let speed = BusSpeed::K500;
    let matrix = pacifica_matrix(speed);
    let mut builder = SimBuilder::new(speed);

    // Restbus: the Pacifica chassis traffic split per sender.
    let mut node_names = Vec::new();
    for sender in matrix.by_sender().keys() {
        node_names.push((builder.node_id(), sender.to_string()));
        builder = builder.node(Node::new(
            sender.to_string(),
            Box::new(ReplayApp::for_sender(&matrix, sender)),
        ));
    }

    // A request/response pair on a dedicated identifier. It outranks the
    // attacker (0x0C8 < 0x0CF), so requests can interrupt error-active
    // retransmission gaps — Table III's c_{h,a} path, exercised live.
    // (A lowest-priority service id would legitimately starve while the
    // bus is at war ~50 % of the time.)
    let service_id = CanId::from_raw(0x0C8);
    let responder = builder.node_id();
    builder = builder.node(Node::new(
        "diag-service",
        Box::new(RemoteResponder::new(service_id, &[0xCA, 0xFE, 0xBA, 0xBE])),
    ));
    let request = CanFrame::remote_frame(service_id, 4).unwrap();
    builder = builder.node(Node::new(
        "diag-tester",
        Box::new(PeriodicSender::new(
            request,
            speed.bits_in_millis(40.0),
            500,
        )),
    ));

    // An IDS monitor (observes, never transmits).
    builder = builder.node(Node::new("ids", Box::new(IdsMonitor::typical_500k())));

    // The MichiCAN dongle, aware of the whole matrix + the service id.
    // It owns no identifier of its own, so it watches the DoS range only:
    // claiming a list member's id would counterattack the owner's
    // legitimate frames and bus it off.
    let mut all_ids = matrix.ids();
    all_ids.push(service_id);
    let list = EcuList::new(all_ids).unwrap();
    let defender = builder.node_id();
    builder = builder.node(
        Node::new("michican", Box::new(SilentApplication))
            .with_agent(Box::new(MichiCan::new(DetectionFsm::for_monitor(&list)))),
    );

    // The attacker: saturating targeted DoS one step above the brake
    // pressure message.
    let attacker = builder.node_id();
    builder = builder.node(Node::new(
        "attacker",
        Box::new(
            SuspensionAttacker::saturating(DosKind::Targeted {
                id: CanId::from_raw(0x0CF),
            })
            .with_payload(&[0xBA; 8]),
        ),
    ));

    // A soak run must not grow memory with run length: trace the bus
    // through a fixed-size ring instead of an unbounded vector. Mild
    // channel noise on top.
    const TRACE_CAPACITY: usize = 10_000;
    let mut sim = builder
        .fault(FaultModel::random(2e-5, 0x50AC))
        .trace_ring(TRACE_CAPACITY)
        .build();

    sim.run_millis(300.0);

    // 0. The ring trace stayed bounded while still recording every bit.
    let trace = sim.trace().unwrap();
    assert_eq!(
        trace.len(),
        TRACE_CAPACITY,
        "ring retains exactly its capacity"
    );
    assert_eq!(
        trace.recorded(),
        sim.now().bits(),
        "every simulated bit was recorded"
    );
    assert!(
        trace.recorded() > TRACE_CAPACITY as u64 * 10,
        "the soak really wrapped the ring many times"
    );
    let snapshot = trace.snapshot();
    assert_eq!(snapshot.len(), TRACE_CAPACITY);
    // The attacker is still at war at the end of the run, so the recent
    // window must contain bus activity (dominant bits).
    assert!(
        snapshot.iter().any(|l| l.is_dominant()),
        "the retained window shows live bus traffic"
    );

    // 1. The attacker is repeatedly eradicated and never completes a frame.
    let episodes = bus_off_episodes(sim.events(), attacker);
    assert!(episodes.len() >= 10, "eradications: {}", episodes.len());
    let attack_delivered = sim
        .events()
        .iter()
        .filter(|e| {
            matches!(&e.kind, EventKind::FrameReceived { frame }
                if frame.id().raw() == 0x0CF)
        })
        .count();
    assert_eq!(attack_delivered, 0);

    // 2. No benign node is ever bused off (noise + defense are harmless).
    for (node, name) in &node_names {
        assert_ne!(
            sim.node(*node).controller().error_state(),
            ErrorState::BusOff,
            "benign node {name} must survive"
        );
    }
    assert_ne!(
        sim.node(responder).controller().error_state(),
        ErrorState::BusOff
    );
    assert_eq!(sim.node(defender).controller().counters().tec(), 0);

    // 3. The request/response service keeps working through everything.
    let responses = sim
        .events()
        .iter()
        .filter(|e| {
            e.node == responder
                && matches!(&e.kind, EventKind::TransmissionSucceeded { frame }
                    if frame.id() == service_id && !frame.is_remote())
        })
        .count();
    assert!(responses >= 4, "diagnostic responses flowed: {responses}");

    // 4. Benign traffic flows at a healthy rate despite the ongoing war.
    let benign_delivered = sim
        .events()
        .iter()
        .filter(|e| e.node == defender && matches!(e.kind, EventKind::FrameReceived { .. }))
        .count();
    assert!(
        benign_delivered > 150,
        "benign frames at the defender: {benign_delivered}"
    );
}

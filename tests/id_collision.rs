//! The identifier-collision phenomenon referenced by the experiment
//! harness: when the legitimate owner of an identifier transmits *at the
//! same instant* as a spoofing attacker using that identifier, both frames
//! are identical through arbitration and diverge in the data field — the
//! wired-AND then hands both parties bit errors in lock-step.
//!
//! This is genuine CAN physics (and the reason MichiCAN suppresses
//! counterattacks during its own transmissions); the paper's clean
//! Experiment 1/2 standard deviations imply its defender ECU was quiescent
//! during captures, which the harness therefore also assumes.

use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId, ErrorState};
use can_sim::{EventKind, Node, SimBuilder};

fn frame(id: u16, data: &[u8]) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
}

#[test]
fn simultaneous_same_id_different_data_damages_both() {
    // Both nodes enqueue the same identifier at t = 0 with different data:
    // they tie in arbitration and collide in the data field.
    let builder = SimBuilder::new(BusSpeed::K500);
    let owner = builder.node_id();
    let builder = builder.node(Node::new(
        "owner",
        Box::new(PeriodicSender::new(frame(0x173, &[0xFF; 8]), 100_000, 0)),
    ));
    let spoofer = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "spoofer",
            Box::new(PeriodicSender::new(frame(0x173, &[0x00; 8]), 100_000, 0)),
        ))
        .build();
    sim.run(400);

    let errors_of = |node: usize| {
        sim.events()
            .iter()
            .filter(|e| e.node == node && matches!(e.kind, EventKind::ErrorDetected { .. }))
            .count()
    };
    // The all-recessive-data owner detects the first mismatch; its error
    // flag then destroys the spoofer's frame too.
    assert!(errors_of(owner) >= 1, "owner must take a bit error");
    assert!(errors_of(spoofer) >= 1, "spoofer is destroyed by the flag");
    assert!(sim.node(owner).controller().counters().tec() > 0);
    assert!(sim.node(spoofer).controller().counters().tec() > 0);
}

#[test]
fn identical_frames_collide_invisibly() {
    // Same identifier AND same data: the wired-AND of two identical
    // streams is the stream itself; both transmitters complete "their"
    // frame without any error. (This is why a spoofer replaying byte-
    // identical traffic is undetectable at the physical layer.)
    let builder = SimBuilder::new(BusSpeed::K500);
    let a = builder.node_id();
    let builder = builder.node(Node::new(
        "a",
        Box::new(PeriodicSender::new(frame(0x100, &[0x42; 4]), 100_000, 0)),
    ));
    let b = builder.node_id();
    // A third node acknowledges the (single, superposed) frame.
    let mut sim = builder
        .node(Node::new(
            "b",
            Box::new(PeriodicSender::new(frame(0x100, &[0x42; 4]), 100_000, 0)),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    sim.run(400);
    assert!(
        !sim.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::ErrorDetected { .. })),
        "identical simultaneous frames are indistinguishable"
    );
    for node in [a, b] {
        assert!(sim
            .events()
            .iter()
            .any(|e| e.node == node && matches!(e.kind, EventKind::TransmissionSucceeded { .. })));
        assert_eq!(sim.node(node).controller().counters().tec(), 0);
    }
}

#[test]
fn lockstep_collisions_degrade_both_parties_into_a_stalemate() {
    // Both parties persistently send the same identifier with different
    // data. Whenever their schedules coincide they collide and both take
    // TEC +8; whenever they drift apart, each transmits alone, succeeds
    // and decrements. The emergent steady state is a *stalemate*: both
    // hover around the error-passive boundary with repeated errors and
    // degraded throughput — and neither is ever eradicated.
    //
    // This is exactly the failure mode MichiCAN's counterattack avoids:
    // the GPIO injection pins the blame on the attacker alone (its TEC
    // walks monotonically to 256) while the defender's counters stay at
    // zero — compare tests/busoff_ladder.rs.
    let builder = SimBuilder::new(BusSpeed::K500);
    let owner = builder.node_id();
    let builder = builder.node(Node::new(
        "owner",
        Box::new(PeriodicSender::new(frame(0x173, &[0xFF; 8]), 200, 0)),
    ));
    let spoofer = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "spoofer",
            Box::new(PeriodicSender::new(frame(0x173, &[0x00; 8]), 200, 0)),
        ))
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    sim.run(20_000);

    let errors_of = |node: usize| {
        sim.events()
            .iter()
            .filter(|e| e.node == node && matches!(e.kind, EventKind::ErrorDetected { .. }))
            .count()
    };
    let successes_of = |node: usize| {
        sim.events()
            .iter()
            .filter(|e| e.node == node && matches!(e.kind, EventKind::TransmissionSucceeded { .. }))
            .count()
    };

    // Both parties take sustained damage...
    assert!(errors_of(owner) >= 16, "owner errors: {}", errors_of(owner));
    assert!(
        errors_of(spoofer) >= 16,
        "spoofer errors: {}",
        errors_of(spoofer)
    );
    assert!(sim.node(owner).controller().counters().tec() > 64);
    assert!(sim.node(spoofer).controller().counters().tec() > 64);
    // ...but neither is eradicated (no clean bus-off like MichiCAN's)...
    assert_ne!(
        sim.node(owner).controller().error_state(),
        ErrorState::BusOff
    );
    assert_ne!(
        sim.node(spoofer).controller().error_state(),
        ErrorState::BusOff
    );
    // ...and both still get *some* frames through: a degraded stalemate.
    // 20k bits at a 200-bit period would allow ~100 clean transmissions.
    let owner_ok = successes_of(owner);
    let spoofer_ok = successes_of(spoofer);
    assert!(owner_ok > 0 && owner_ok < 90, "owner throughput {owner_ok}");
    assert!(
        spoofer_ok > 0 && spoofer_ok < 95,
        "spoofer throughput {spoofer_ok}"
    );
}

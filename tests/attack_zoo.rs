//! End-to-end checks of the bit-level adversary zoo: error-flag injection
//! accounting on the can-obs surface, in-simulation adaptivity of the
//! racing attacker, and registry enumeration as the `experiments attacks`
//! runner consumes it.

use can_attacks::error_flag::ERROR_FLAG_BITS;
use can_attacks::registry::{all_variants, attack_names, variants_for};
use can_attacks::{AdaptiveRacer, ErrorFlagInjector, GhostInjector};
use can_core::agent::BitAgent;
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::bitstream::stuff_frame;
use can_core::{BitInstant, BusSpeed, CanFrame, CanId, Level};
use can_obs::Recorder;
use can_sim::{bus_off_episodes, Node, SimBuilder};

const VICTIM_ID: u16 = 0x173;

fn victim_frame() -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(VICTIM_ID), &[0x00; 8]).unwrap()
}

#[test]
fn error_flag_injector_drives_exactly_six_dominant_bits() {
    // Open loop against the victim's golden bitstream: the injector must
    // drive exactly ERROR_FLAG_BITS consecutive dominant bits and nothing
    // else, regardless of what the rest of the frame looks like.
    let mut attacker = ErrorFlagInjector::new(CanId::from_raw(VICTIM_ID), 25);
    let mut t = 0u64;
    for _ in 0..12 {
        attacker.on_bit(Level::Recessive, BitInstant::from_bits(t));
        t += 1;
    }
    let wire = stuff_frame(&victim_frame());
    let mut driven = Vec::new();
    for (i, &bit) in wire.bits.iter().enumerate() {
        let seen = if attacker.tx_level() == Some(Level::Dominant) {
            driven.push(i);
            Level::Dominant
        } else {
            bit
        };
        attacker.on_bit(seen, BitInstant::from_bits(t));
        t += 1;
    }
    assert_eq!(
        driven.len(),
        ERROR_FLAG_BITS as usize,
        "exactly six dominant bits: {driven:?}"
    );
    assert!(
        driven.windows(2).all(|w| w[1] == w[0] + 1),
        "the flag is consecutive: {driven:?}"
    );
    assert_eq!(attacker.flags_injected(), 1);
}

#[test]
fn error_flag_injection_is_accounted_as_real_can_errors() {
    // In a live simulation the injected flag must surface on the can-obs
    // error counters exactly as the protocol prescribes: six equal bits
    // are a stuff violation for every node — charged to the victim in its
    // transmitter role and to the bystanders in their receiver role — and
    // the victim's bus-off ladder still runs on the standard 32-attempt
    // error-confinement rule while the attacker stays untouchable.
    let recorder = Recorder::enabled();
    let builder = SimBuilder::new(BusSpeed::K500).recorder(recorder.clone());
    let victim_node = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "victim",
            Box::new(PeriodicSender::new(victim_frame(), 600, 0)),
        ))
        .node(
            Node::new("attacker", Box::new(SilentApplication)).with_agent(Box::new(
                ErrorFlagInjector::new(CanId::from_raw(VICTIM_ID), 25),
            )),
        )
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    sim.run(30_000);

    let registry = recorder.into_registry();
    let key = |node: usize, kind: &str, role: &str| {
        format!("can_errors_total{{node=\"{node}\",kind=\"{kind}\",role=\"{role}\"}}")
    };
    let victim_tx_stuff = registry.counter(&key(victim_node, "stuff", "tx"));
    assert!(
        victim_tx_stuff > 0,
        "the transmitter must see the flag as a stuff violation"
    );
    assert!(
        registry.counter(&key(2, "stuff", "rx")) > 0,
        "receivers must see the flag as a stuff violation"
    );
    // The error is never charged to the transmitter as a receiver, and
    // never to the victim twice.
    assert_eq!(registry.counter(&key(victim_node, "stuff", "rx")), 0);

    let episodes = bus_off_episodes(sim.events(), victim_node);
    assert!(!episodes.is_empty(), "the victim must be forced off");
    for episode in &episodes {
        assert_eq!(episode.attempts, 32, "TEC +8 per destroyed attempt");
    }
    // Every destroyed attempt is one tx-side stuff error: the counter and
    // the episode ladder must agree.
    assert_eq!(
        victim_tx_stuff,
        32 * episodes.len() as u64,
        "one stuff error per destroyed attempt"
    );
    // The attacker's host controller only ever *receives* — its REC
    // saturates at error-passive and no counterattack can bus it off.
    assert!(
        bus_off_episodes(sim.events(), 1).is_empty(),
        "the bit-level attacker stays on the bus"
    );
}

#[test]
fn adaptive_racer_learns_kill_positions_in_simulation() {
    // A ghost injector kills the victim's frames early (right after
    // arbitration). The racer probes two frames, measures where those
    // kills complete on the wire, then strikes ahead of the observed
    // minimum — all visible through its own metric series.
    let probe = Recorder::enabled();
    let mut racer = AdaptiveRacer::new(CanId::from_raw(VICTIM_ID), 2, 2, 40);
    racer.set_recorder(&probe, 1);
    let mut sim = SimBuilder::new(BusSpeed::K500)
        .node(Node::new(
            "victim",
            Box::new(PeriodicSender::new(victim_frame(), 600, 0)),
        ))
        .node(Node::new("racer", Box::new(SilentApplication)).with_agent(Box::new(racer)))
        .node(
            Node::new("ghost", Box::new(SilentApplication))
                .with_agent(Box::new(GhostInjector::new(CanId::from_raw(VICTIM_ID)))),
        )
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    sim.run(30_000);

    let registry = probe.into_registry();
    let observed = registry
        .histogram("adaptive_racer_observed_kill_bits{node=\"1\"}")
        .expect("the kill-position histogram is declared");
    assert!(
        observed.count() >= 2,
        "at least the two probe kills must be measured: {}",
        observed.count()
    );
    let min = observed.min().expect("kills were observed");
    assert!(
        min < 40,
        "the ghost kills early, far before the fallback position: {min}"
    );
    assert!(
        registry.counter("adaptive_racer_strikes_total{node=\"1\"}") > 0,
        "after probing the racer must strike at its learned position"
    );
}

#[test]
fn registry_enumeration_matches_the_experiments_surface() {
    // The `experiments attacks --attacks all` runner enumerates exactly
    // this registry; pin the surface the CI smoke run depends on.
    let names = attack_names();
    for family in [
        "stuff-overwrite",
        "error-flag",
        "truncate",
        "adaptive-racer",
    ] {
        assert!(names.contains(&family), "new bit-level family {family}");
    }
    let variants = all_variants();
    assert!(variants.len() >= 12, "registry shrank: {}", variants.len());
    let bit_level_families: std::collections::HashSet<&str> = variants
        .iter()
        .filter(|v| v.bit_level())
        .map(|v| v.attack)
        .collect();
    assert!(
        bit_level_families.len() >= 4,
        "at least four bit-level families beyond ghost: {bit_level_families:?}"
    );
    // Selection works per family and rejects unknowns, exactly as the
    // `--attacks` flag resolves them.
    for name in &names {
        let family = variants_for(name).expect("every listed name resolves");
        assert!(!family.is_empty());
    }
    assert!(variants_for("not-an-attack").is_none());
    // The bench grid multiplies variants by the three defense columns.
    assert_eq!(
        bench::attackzoo::zoo_cells().len(),
        variants.len() * 3,
        "every variant appears once per defense column"
    );
}

//! The paper's "Attacker Limitations" discussion (§III) made executable:
//! integrated-controller bit access is a double-edged sword. A
//! CANnon-style bit-level attacker can bus-off *victims*, and MichiCAN's
//! counterattack cannot touch it — there is no protocol controller behind
//! the attack whose TEC could be inflated. Isolation (hypervisor/MPU/
//! TrustZone, Fig. 3) is therefore a prerequisite, not an optimization.

use can_attacks::registry::{all_variants, AttackAgent};
use can_attacks::GhostInjector;
use can_core::agent::BitAgent;
use can_core::app::{PeriodicSender, SilentApplication};
use can_core::{BusSpeed, CanFrame, CanId, ErrorState};
use can_sim::{bus_off_episodes, EventKind, Node, SimBuilder};
use michican::prelude::*;

fn frame(id: u16, data: &[u8]) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
}

/// Every bit-level attacker the registry knows, instantiated against
/// `victim`. The limitation arguments below must hold for *all* of them,
/// not just the ghost — a new zoo entry extends these tests for free.
fn bit_level_attackers(victim: CanId) -> Vec<(String, Box<dyn BitAgent>)> {
    all_variants()
        .into_iter()
        .filter(|v| v.bit_level())
        .map(|v| match v.instantiate(victim, 400) {
            AttackAgent::Bit(agent) => (v.label(), agent),
            AttackAgent::App(_) => unreachable!("bit_level() variants produce bit agents"),
        })
        .collect()
}

#[test]
fn every_bit_level_attacker_buses_off_a_legitimate_victim() {
    // The offensive use of bit-level access: the victim's transmissions
    // are destroyed on the wire and its own TEC walks to 256. The
    // all-dominant payload guarantees recessive stuff bits, so even the
    // stuff-overwrite variants have a strike surface.
    for (label, agent) in bit_level_attackers(CanId::from_raw(0x0F0)) {
        let builder = SimBuilder::new(BusSpeed::K500);
        let victim = builder.node_id();
        let mut sim = builder
            .node(Node::new(
                "victim",
                Box::new(PeriodicSender::new(frame(0x0F0, &[0x00; 8]), 400, 0)),
            ))
            .node(Node::new("compromised-ecu", Box::new(SilentApplication)).with_agent(agent))
            .node(Node::new("rx", Box::new(SilentApplication)))
            .build();

        sim.run_until(30_000, |e| matches!(e.kind, EventKind::BusOff))
            .unwrap_or_else(|| panic!("{label}: the victim must be forced off the bus"));
        let episodes = bus_off_episodes(sim.events(), victim);
        // The adaptive racer lets its probe frames through first, so its
        // first episode spans a few extra (successful) attempts.
        assert!(
            episodes[0].attempts >= 32,
            "{label}: the 32-error ladder, abused ({} attempts)",
            episodes[0].attempts
        );
    }
}

#[test]
fn ghost_injector_walks_the_exact_32_attempt_ladder() {
    // Pin the cleanest case exactly: every attempt destroyed, no probing,
    // first episode spans precisely 32 attempts.
    let builder = SimBuilder::new(BusSpeed::K500);
    let victim = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "victim",
            Box::new(PeriodicSender::new(frame(0x0F0, &[0x42; 8]), 400, 0)),
        ))
        .node(
            Node::new("compromised-ecu", Box::new(SilentApplication))
                .with_agent(Box::new(GhostInjector::new(CanId::from_raw(0x0F0)))),
        )
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();

    sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff))
        .expect("the victim must be forced off the bus");
    let episodes = bus_off_episodes(sim.events(), victim);
    assert_eq!(episodes[0].attempts, 32, "the same 32-error ladder, abused");
}

#[test]
fn michican_cannot_eradicate_any_bit_level_attacker() {
    // Bit-level attackers have no controller: MichiCAN detects nothing
    // attackable. Their injections target the victim's *legitimate*
    // identifier, which MichiCAN cannot flag (Definition IV.1 applies to
    // the true owner only) — and even a hypothetical counterattack would
    // find no TEC to inflate. The victim is lost despite the defense.
    for (label, agent) in bit_level_attackers(CanId::from_raw(0x0F0)) {
        let builder = SimBuilder::new(BusSpeed::K500);
        let victim = builder.node_id();
        // A MichiCAN defender protecting a *different* identifier watches on.
        let list = EcuList::from_raw(&[0x0F0, 0x173]);
        let mut sim = builder
            .node(Node::new(
                "victim-0x0F0",
                Box::new(PeriodicSender::new(frame(0x0F0, &[0x00; 8]), 400, 0)),
            ))
            .node(Node::new("compromised-ecu", Box::new(SilentApplication)).with_agent(agent))
            .node(
                Node::new("defender-0x173", Box::new(SilentApplication))
                    .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 1)))),
            )
            .build();

        sim.run(20_000);

        // The victim falls despite MichiCAN being present. (The episode
        // log, not the instantaneous error state: after bus-off recovery
        // the controller is error-active again, so the state at an
        // arbitrary instant depends on where in the kill/recover cycle
        // the horizon lands.)
        assert!(
            !bus_off_episodes(sim.events(), victim).is_empty(),
            "{label}: the victim must fall despite MichiCAN being present"
        );
        // Nothing for the defense to eradicate: the only bus-offs are the
        // victim's own.
        let bus_off_nodes: std::collections::HashSet<usize> = sim
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::BusOff))
            .map(|e| e.node)
            .collect();
        assert_eq!(
            bus_off_nodes,
            std::collections::HashSet::from([victim]),
            "{label}: only the victim is ever bused off — the attacker is untouchable"
        );
    }
}

#[test]
fn ghost_against_michicans_own_id_is_a_stalemate_of_injections() {
    // The ghost attacks MichiCAN's own identifier: the defender's frames
    // are destroyed (availability lost for that ECU), but the defender's
    // bit agent likewise cannot be eradicated, and the defender's
    // controller TEC climbs only as a *transmitter* — walking IT toward
    // bus-off. This quantifies why the paper insists the CAN-controller
    // path must be isolated from compromise: against a peer with bit
    // access, the protocol offers no defense at all.
    let builder = SimBuilder::new(BusSpeed::K500);
    let list = EcuList::from_raw(&[0x173]);
    let defender = builder.node_id();
    let mut sim = builder
        .node(
            Node::new(
                "michican-0x173",
                Box::new(PeriodicSender::new(frame(0x173, &[0xA5; 8]), 400, 0)),
            )
            .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
        )
        .node(
            Node::new("ghost", Box::new(SilentApplication))
                .with_agent(Box::new(GhostInjector::new(CanId::from_raw(0x173)))),
        )
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();

    sim.run(20_000);

    assert_eq!(
        sim.node(defender).controller().error_state(),
        ErrorState::BusOff,
        "bit-level attackers defeat even defended ECUs — isolation is mandatory"
    );
}

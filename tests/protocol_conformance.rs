//! ISO 11898-1 conformance checks at simulator level: retransmission
//! gaps, suspend transmission, recovery timing, error-flag superposition —
//! the protocol mechanics every paper number rests on.

use can_core::app::{PeriodicSender, SilentApplication};
use can_core::counters::{RECOVERY_SEQUENCES, RECOVERY_SEQUENCE_BITS};
use can_core::{BusSpeed, CanFrame, CanId};
use can_sim::{EventKind, Node, SimBuilder, Simulator};
use michican::prelude::*;

fn frame(id: u16, data: &[u8]) -> CanFrame {
    CanFrame::data_frame(CanId::from_raw(id), data).unwrap()
}

fn attack_builder(attacker_id: u16) -> (SimBuilder, usize) {
    let list = EcuList::from_raw(&[0x173]);
    let builder = SimBuilder::new(BusSpeed::K50);
    let attacker = builder.node_id();
    let builder = builder
        .node(Node::new(
            "attacker",
            Box::new(PeriodicSender::new(frame(attacker_id, &[0; 8]), 400, 0)),
        ))
        .node(
            Node::new("defender", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 0)))),
        );
    (builder, attacker)
}

fn attack_sim(attacker_id: u16) -> (Simulator, usize) {
    let (builder, attacker) = attack_builder(attacker_id);
    (builder.build(), attacker)
}

/// Collects the attacker's transmission-start instants of the first
/// episode.
fn episode_starts(sim: &Simulator, attacker: usize) -> Vec<u64> {
    let mut starts = Vec::new();
    for e in sim.events() {
        if e.node == attacker {
            match e.kind {
                EventKind::TransmissionStarted { .. } => starts.push(e.at.bits()),
                EventKind::BusOff => break,
                _ => {}
            }
        }
    }
    starts
}

#[test]
fn error_active_retransmission_gap_matches_paper() {
    // Worst case (paper §V-C): each error-active destroyed attempt spans
    // 35 bits — error at frame bit 18, 14-bit error frame, 3-bit IFS.
    let (mut sim, attacker) = attack_sim(0x064);
    sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff));
    let starts = episode_starts(&sim, attacker);
    assert_eq!(starts.len(), 32);

    // Error-active attempts are the first 16; measure their spacing.
    let active_gaps: Vec<u64> = starts[..16].windows(2).map(|w| w[1] - w[0]).collect();
    for gap in &active_gaps {
        assert!(
            (30..=40).contains(gap),
            "error-active retransmission gap {gap} outside 30–40 bits \
             (paper: 35 clean, ± injection-window margin)"
        );
    }
}

#[test]
fn error_passive_gap_includes_the_suspend_period() {
    let (mut sim, attacker) = attack_sim(0x064);
    sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff));
    let starts = episode_starts(&sim, attacker);

    let passive_gaps: Vec<u64> = starts[16..].windows(2).map(|w| w[1] - w[0]).collect();
    let active_gaps: Vec<u64> = starts[..16].windows(2).map(|w| w[1] - w[0]).collect();
    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
    let delta = mean(&passive_gaps) - mean(&active_gaps);
    // Theory: +8 (suspend). The measured delta runs a few bits higher
    // because the defender's injection tail delays the *passive* flag's
    // six-equal-bits completion, an interaction absent in active flags.
    assert!(
        (7.0..=16.0).contains(&delta),
        "passive attempts add the suspend period, measured delta {delta:.1}"
    );
}

#[test]
fn recovery_takes_128_sequences_of_11_recessive_bits() {
    let (mut sim, attacker) = attack_sim(0x064);
    sim.run_until(10_000, |e| matches!(e.kind, EventKind::BusOff));
    let off_at = sim
        .events()
        .iter()
        .find(|e| matches!(e.kind, EventKind::BusOff))
        .unwrap()
        .at
        .bits();
    sim.run_until(5_000, |e| matches!(e.kind, EventKind::Recovered));
    let recovered_at = sim
        .events()
        .iter()
        .find(|e| matches!(e.kind, EventKind::Recovered))
        .expect("recovery on an idle bus")
        .at
        .bits();
    let expected = (RECOVERY_SEQUENCES * RECOVERY_SEQUENCE_BITS) as u64;
    let took = recovered_at - off_at;
    assert!(
        (expected..=expected + 16).contains(&took),
        "recovery took {took} bits, expected ≈ {expected} on an idle bus"
    );
    let _ = attacker;
}

#[test]
fn no_errors_and_no_bus_off_without_an_attacker() {
    // Long mixed benign traffic: zero protocol errors, zero bus-offs.
    //
    // Deployment contract: the defender agent lives ON the ECU that owns
    // the identifier its FSM treats as "own" — attaching an FSM for 0x400
    // to a node that never transmits 0x400 would make the real owner's
    // frames look like spoofing (by Definition IV.1 they are: two nodes
    // claiming one identifier).
    let mut builder = SimBuilder::new(BusSpeed::K500);
    for (i, (id, period)) in [(0x0A0u16, 500u64), (0x150, 700), (0x2B0, 1_100)]
        .iter()
        .enumerate()
    {
        builder = builder.node(Node::new(
            format!("ecu{i}"),
            Box::new(PeriodicSender::new(
                frame(*id, &[i as u8; 8]),
                *period,
                (i as u64) * 37,
            )),
        ));
    }
    let list = EcuList::from_raw(&[0x0A0, 0x150, 0x2B0, 0x400]);
    // The 0x400 owner itself runs MichiCAN: its own transmissions are
    // exempted via the own-transmission hint.
    let mut sim = builder
        .node(
            Node::new(
                "ecu3-defender",
                Box::new(PeriodicSender::new(frame(0x400, &[3; 8]), 1_900, 111)),
            )
            .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 3)))),
        )
        .build();
    sim.run(60_000);

    assert!(
        !sim.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::ErrorDetected { .. })),
        "benign traffic must be error-free under a watching defender"
    );
    assert!(
        !sim.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::BusOff)),
        "no false-positive eradications"
    );
    let delivered = sim
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FrameReceived { .. }))
        .count();
    assert!(delivered > 200, "traffic flows: {delivered}");
}

#[test]
fn higher_priority_benign_frame_interrupts_active_retransmissions() {
    // Table III, Experiments 1/3: in the error-active region only
    // higher-priority messages win the retransmission race.
    let list = EcuList::from_raw(&[0x020, 0x173]);
    let builder = SimBuilder::new(BusSpeed::K50);
    let attacker = builder.node_id();
    let mut sim = builder
        .node(Node::new(
            "attacker",
            Box::new(PeriodicSender::new(frame(0x064, &[0; 8]), 5_000, 0)),
        ))
        // Higher-priority benign sender (0x020 < 0x064), due mid-episode.
        .node(Node::new(
            "hp-benign",
            Box::new(PeriodicSender::new(frame(0x020, &[7; 8]), 5_000, 200)),
        ))
        .node(
            Node::new("defender", Box::new(SilentApplication))
                .with_agent(Box::new(MichiCan::new(DetectionFsm::for_ecu(&list, 1)))),
        )
        .node(Node::new("rx", Box::new(SilentApplication)))
        .build();
    sim.run_until(20_000, |e| matches!(e.kind, EventKind::BusOff))
        .expect("attacker still bused off despite interruptions");

    // The benign frame completed during the episode.
    let benign_success = sim.events().iter().any(|e| {
        matches!(&e.kind, EventKind::TransmissionSucceeded { frame }
            if frame.id() == CanId::from_raw(0x020))
    });
    assert!(
        benign_success,
        "the higher-priority message must get through"
    );
    // And the episode stretched beyond the clean 1248 + margin bits.
    let episodes = can_sim::bus_off_episodes(sim.events(), attacker);
    assert!(
        episodes[0].duration().as_bits() > 1_300,
        "interruption lengthens the episode: {}",
        episodes[0].duration().as_bits()
    );
}

#[test]
fn bus_level_is_dominated_during_error_flags() {
    // Error flags are six dominant bits: trace the bus and find at least
    // one dominant run of ≥ 6 outside the frame prefix whenever an error
    // occurs.
    let (builder, _) = attack_builder(0x064);
    let mut sim = builder.trace().build();
    sim.run_until(3_000, |e| matches!(e.kind, EventKind::ErrorDetected { .. }))
        .expect("an error must occur");
    sim.run(40); // let the flag play out
    let trace = sim.trace().unwrap();
    let max_dominant_run = trace
        .levels()
        .iter()
        .fold((0usize, 0usize), |(best, run), level| {
            if level.is_dominant() {
                ((best).max(run + 1), run + 1)
            } else {
                (best, 0)
            }
        })
        .0;
    assert!(
        max_dominant_run >= 6,
        "superposed error flags must dominate ≥ 6 bits, saw {max_dominant_run}"
    );
}

// ---------------------------------------------------------------------------
// Golden-vector conformance: known-answer tests for CRC-15 and bit
// stuffing, frozen from hand-checked encodings. Any change to the codec
// that alters these bitstreams is a wire-format break, not a refactor.
// ---------------------------------------------------------------------------

mod golden {
    use can_core::bitstream::{decode_frame, stuff_frame, unstuffed_bits, FrameField, FrameLayout};
    use can_core::crc::checksum;
    use can_core::{CanFrame, CanId, Level};

    /// `'0'` = dominant, `'1'` = recessive.
    fn bits_to_string(bits: &[Level]) -> String {
        bits.iter()
            .map(|l| if l.is_dominant() { '0' } else { '1' })
            .collect()
    }

    fn string_to_bits(s: &str) -> Vec<Level> {
        s.chars()
            .map(|c| match c {
                '0' => Level::Dominant,
                '1' => Level::Recessive,
                other => panic!("bad vector char {other:?}"),
            })
            .collect()
    }

    /// The CRC field value of a frame: CRC-15 over the unstuffed bits
    /// from SOF up to (excluding) the CRC field.
    fn crc_field_of(frame: &CanFrame) -> u16 {
        let layout = FrameLayout::for_payload(frame.data().len());
        let bits = unstuffed_bits(frame);
        checksum(&bits[..layout.span(FrameField::Crc).start])
    }

    /// One golden frame: identifier, payload, expected stuffed bitstream,
    /// expected stuff-bit positions, expected CRC field value.
    struct Golden {
        id: u16,
        payload: &'static [u8],
        stuffed: &'static str,
        stuff_positions: &'static [usize],
        crc: u16,
    }

    /// Four canonical frames covering the corner cases: the defender's
    /// 0x173/DLC 8 frame, the all-dominant identifier (max stuffing), the
    /// all-recessive identifier, and a mixed mid-range frame.
    const GOLDEN: &[Golden] = &[
        Golden {
            id: 0x173,
            payload: &[0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04],
            stuffed: "00010111001100010001101111010101101101111100111011110000010010000010100000100110000011000100010101111011111111111",
            stuff_positions: &[42, 57, 66, 74, 84],
            crc: 0x22BD,
        },
        Golden {
            id: 0x000,
            payload: &[],
            stuffed: "00000100000100000100000100000100000100001111111111",
            stuff_positions: &[5, 11, 17, 23, 29, 35],
            crc: 0x0000,
        },
        Golden {
            id: 0x7FF,
            payload: &[0xFF],
            stuffed: "011111011111010000010111110111110111010000101011111111111",
            stuff_positions: &[6, 12, 19, 26, 32],
            crc: 0x7A15,
        },
        Golden {
            id: 0x555,
            payload: &[0x00, 0xFF, 0x55, 0xAA],
            stuffed: "0101010101010000100000100000111110111101010101101010100100011100101011111111111",
            stuff_positions: &[22, 28, 33],
            crc: 0x2395,
        },
    ];

    #[test]
    fn stuffed_bitstreams_match_the_golden_vectors() {
        for g in GOLDEN {
            let frame = CanFrame::data_frame(CanId::from_raw(g.id), g.payload).unwrap();
            let wire = stuff_frame(&frame);
            assert_eq!(
                bits_to_string(&wire.bits),
                g.stuffed,
                "stuffed bitstream of id {:#05X}",
                g.id
            );
            assert_eq!(
                wire.stuff_positions, g.stuff_positions,
                "stuff positions of id {:#05X}",
                g.id
            );
        }
    }

    #[test]
    fn crc_fields_match_the_golden_vectors() {
        for g in GOLDEN {
            let frame = CanFrame::data_frame(CanId::from_raw(g.id), g.payload).unwrap();
            assert_eq!(
                crc_field_of(&frame),
                g.crc,
                "CRC-15 field of id {:#05X}",
                g.id
            );
        }
    }

    #[test]
    fn golden_bitstreams_decode_back_to_their_frames() {
        for g in GOLDEN {
            let frame = CanFrame::data_frame(CanId::from_raw(g.id), g.payload).unwrap();
            let decoded = decode_frame(&string_to_bits(g.stuffed))
                .unwrap_or_else(|e| panic!("golden vector of id {:#05X} must decode: {e:?}", g.id));
            assert_eq!(decoded, frame, "round-trip of id {:#05X}", g.id);
        }
    }

    #[test]
    fn crc15_known_answers() {
        // Register starts at 0; a single recessive bit injects the
        // polynomial itself.
        assert_eq!(checksum(&[]), 0x0000);
        assert_eq!(checksum(&[Level::Recessive]), 0x4599);
        // All-dominant input never sets the feedback bit.
        assert_eq!(checksum(&[Level::Dominant; 19]), 0x0000);
        // CRC is over 15 bits only.
        assert!(checksum(&string_to_bits("110100110101001101011")) <= 0x7FFF);
    }

    /// Adversarial companion vectors: the wire positions of each golden
    /// frame's *recessive* stuff bits — undriven on a wired-AND bus, so
    /// exactly the positions a bit-level attacker can overwrite dominant.
    /// Frozen alongside the bitstreams; a codec change that moves these
    /// changes the attack surface, not just the encoding.
    const OVERWRITABLE: &[&[usize]] = &[
        &[57, 66, 74, 84],
        &[5, 11, 17, 23, 29, 35],
        &[19],
        &[22, 28],
    ];

    /// The subset of [`OVERWRITABLE`] an *identifier-selective* attacker
    /// can actually hit: stuff bits inside the arbitration field (id 0x000
    /// has two, at wire 5 and 11) occur before the victim's identifier is
    /// knowable, so a targeted strike can only land after arbitration.
    const STRIKEABLE: &[&[usize]] = &[&[57, 66, 74, 84], &[17, 23, 29, 35], &[19], &[22, 28]];

    #[test]
    fn recessive_stuff_positions_match_the_adversarial_vectors() {
        for (g, expected) in GOLDEN.iter().zip(OVERWRITABLE) {
            let frame = CanFrame::data_frame(CanId::from_raw(g.id), g.payload).unwrap();
            let wire = stuff_frame(&frame);
            let recessive: Vec<usize> = wire
                .stuff_positions
                .iter()
                .copied()
                .filter(|&p| wire.bits[p].is_recessive())
                .collect();
            assert_eq!(
                &recessive, expected,
                "overwritable stuff bits of id {:#05X}",
                g.id
            );
        }
    }

    #[test]
    fn stuff_overwrite_strikes_exactly_the_golden_positions() {
        // The attacker's computed strike position must land on the frozen
        // vector for every skip depth the frame offers.
        use can_attacks::StuffBitOverwrite;
        use can_core::agent::BitAgent;
        use can_core::BitInstant;

        for (g, strikeable) in GOLDEN.iter().zip(STRIKEABLE) {
            let frame = CanFrame::data_frame(CanId::from_raw(g.id), g.payload).unwrap();
            let wire = stuff_frame(&frame);
            for (skip, &expected_at) in strikeable.iter().enumerate() {
                let mut attacker = StuffBitOverwrite::new(CanId::from_raw(g.id), skip as u32);
                let mut t = 0u64;
                for _ in 0..12 {
                    attacker.on_bit(can_core::Level::Recessive, BitInstant::from_bits(t));
                    t += 1;
                }
                let mut driven = Vec::new();
                for (i, &bit) in wire.bits.iter().enumerate() {
                    // Wired-AND: while the attacker drives dominant, the
                    // bus reads dominant regardless of the wire bit.
                    let seen = if attacker.tx_level() == Some(can_core::Level::Dominant) {
                        driven.push(i);
                        can_core::Level::Dominant
                    } else {
                        bit
                    };
                    attacker.on_bit(seen, BitInstant::from_bits(t));
                    t += 1;
                }
                assert_eq!(
                    driven,
                    vec![expected_at],
                    "id {:#05X} skip {skip} must strike wire bit {expected_at}",
                    g.id
                );
            }
        }
    }

    #[test]
    fn no_six_bit_run_survives_stuffing() {
        for g in GOLDEN {
            let frame = CanFrame::data_frame(CanId::from_raw(g.id), g.payload).unwrap();
            let wire = stuff_frame(&frame);
            let layout = FrameLayout::for_payload(g.payload.len());
            // Stuffing covers SOF..CRC; find the stuffed span end (CRC end
            // plus inserted stuff bits).
            let stuffed_span_end = layout.span(FrameField::Crc).end + wire.stuff_positions.len();
            let mut run = 1usize;
            for w in wire.bits[..stuffed_span_end].windows(2) {
                run = if w[1] == w[0] { run + 1 } else { 1 };
                assert!(
                    run <= 5,
                    "six identical bits within the stuffed span of id {:#05X}",
                    g.id
                );
            }
        }
    }
}
